"""Chord node: fingers, successor list, joins, leaves, key handoff.

A deterministic, in-memory Chord implementation. Maintenance (stabilize /
fix-fingers / successor-list repair) runs in explicit rounds driven by the
ring facade rather than background threads, which makes convergence and
churn behaviour exactly reproducible in tests. Lookups are *iterative*
(the caller hops from node to node), matching how Bamboo routes and making
hop counts measurable.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.dht.hashing import RING_BITS, in_interval, key_id, node_id
from repro.errors import NodeMissing


class ChordNode:
    """One DHT participant."""

    def __init__(self, name: str, successor_list_size: int = 4) -> None:
        self.name = name
        self.id = node_id(name)
        self.alive = True
        self.predecessor: Optional[ChordNode] = None
        self.successors: list[ChordNode] = [self]  # successor list, repaired
        self.fingers: list[Optional[ChordNode]] = [None] * RING_BITS
        self.r = successor_list_size
        self.store: dict[Any, Any] = {}
        self.lookups_served = 0

    # -- basic ring relations ----------------------------------------------

    @property
    def successor(self) -> "ChordNode":
        for node in self.successors:
            if node.alive:
                return node
        return self  # fully isolated: self-loop

    def owns(self, kid: int) -> bool:
        """A node owns keys in ``(predecessor, self]``."""
        if self.predecessor is None or self.predecessor is self:
            return True
        return in_interval(kid, self.predecessor.id, self.id)

    # -- lookup -------------------------------------------------------------

    def closest_preceding(self, kid: int) -> "ChordNode":
        for finger in reversed(self.fingers):
            if (
                finger is not None
                and finger.alive
                and in_interval(finger.id, self.id, kid, inclusive_right=False)
            ):
                return finger
        for node in reversed(self.successors):
            if node.alive and in_interval(node.id, self.id, kid, inclusive_right=False):
                return node
        return self

    def find_successor(self, kid: int, max_hops: int = 256) -> tuple["ChordNode", int]:
        """Iterative lookup: returns ``(owner, hops)``."""
        current: ChordNode = self
        hops = 0
        while hops <= max_hops:
            current.lookups_served += 1
            succ = current.successor
            if in_interval(kid, current.id, succ.id):
                return succ, hops
            nxt = current.closest_preceding(kid)
            if nxt is current:
                return succ, hops
            current = nxt
            hops += 1
        raise RuntimeError(f"lookup for {kid:x} exceeded {max_hops} hops")

    # -- membership ------------------------------------------------------------

    def join(self, bootstrap: "ChordNode") -> None:
        """Join the ring known to ``bootstrap``; pulls owed keys over."""
        owner, _ = bootstrap.find_successor(self.id)
        self.predecessor = None
        self.successors = [owner]
        # Take over keys in (new_predecessor, self] from our successor.
        moved = owner.handoff_below(self.id)
        self.store.update(moved)

    def handoff_below(self, new_node_id: int) -> dict[Any, Any]:
        """Give up keys a joining predecessor now owns."""
        if self.predecessor is None or self.predecessor is self:
            lo = self.id  # single-node ring: everything below self moves
        else:
            lo = self.predecessor.id
        moved = {
            k: v
            for k, v in self.store.items()
            if in_interval(key_id(k), lo, new_node_id)
        }
        for k in moved:
            del self.store[k]
        return moved

    def leave(self) -> None:
        """Graceful departure: hand all keys to the successor, splice out."""
        succ = self.successor
        if succ is not self:
            succ.store.update(self.store)
            if succ.predecessor is self:
                succ.predecessor = self.predecessor
            if self.predecessor is not None and self.predecessor is not self:
                pred = self.predecessor
                pred.successors = [succ] + [
                    s for s in pred.successors if s is not self
                ][: pred.r - 1]
        self.store.clear()
        self.alive = False

    def crash(self) -> None:
        """Abrupt failure: state is lost; the ring self-heals via stabilize."""
        self.alive = False
        self.store.clear()

    # -- maintenance (explicit rounds) --------------------------------------

    def stabilize(self) -> None:
        if not self.alive:
            return
        succ = self.successor
        x = succ.predecessor
        if (
            x is not None
            and x.alive
            and x is not self
            and in_interval(x.id, self.id, succ.id, inclusive_right=False)
        ):
            succ = x
        # repair successor list from the (possibly new) successor
        chain = [succ] + [s for s in succ.successors if s.alive and s is not self]
        deduped: list[ChordNode] = []
        for node in chain:
            if node not in deduped:
                deduped.append(node)
        self.successors = deduped[: self.r]
        succ.notify(self)

    def notify(self, candidate: "ChordNode") -> None:
        if not self.alive:
            return
        if (
            self.predecessor is None
            or not self.predecessor.alive
            or in_interval(
                candidate.id, self.predecessor.id, self.id, inclusive_right=False
            )
        ):
            if candidate is not self:
                self.predecessor = candidate

    def fix_fingers(self) -> None:
        if not self.alive:
            return
        for i in range(RING_BITS):
            target = (self.id + (1 << i)) % (1 << RING_BITS)
            try:
                owner, _ = self.find_successor(target)
            except RuntimeError:
                owner = self.successor
            self.fingers[i] = owner

    # -- storage -------------------------------------------------------------

    def put_local(self, key: Any, value: Any) -> None:
        self.store[key] = value

    def get_local(self, key: Any) -> Any:
        try:
            return self.store[key]
        except KeyError:
            raise NodeMissing(f"dht node {self.name}: no key {key!r}") from None

    def replica_targets(self, k: int) -> Iterator["ChordNode"]:
        """Self plus up to ``k - 1`` distinct live successors."""
        yield self
        count = 1
        for node in self.successors:
            if count >= k:
                return
            if node.alive and node is not self:
                yield node
                count += 1

    def __repr__(self) -> str:
        return f"<ChordNode {self.name} id={self.id:>6x...}>"
