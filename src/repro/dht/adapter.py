"""Adapter: serve the blob system's metadata RPCs from the Chord ring.

Lets a deployment swap the fixed metadata-provider set for the dynamic DHT
without touching any protocol code: register one
:class:`DhtMetadataService` actor and route all ``meta.*`` traffic to it.
Tree nodes keep their write-once discipline (duplicate identical puts are
idempotent; conflicting puts are rejected), so versioned snapshots remain
immutable regardless of ring churn.
"""

from __future__ import annotations

from typing import Any

from repro.dht.ring import ChordRing
from repro.errors import ImmutabilityViolation, NodeMissing
from repro.metadata.node import NodeKey, TreeNode
from repro.metadata.router import StaticRouter
from repro.net.sansio import Address


class DhtMetadataService:
    """Actor bridging ``meta.*`` RPCs onto a :class:`ChordRing`."""

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring
        self.puts = 0
        self.gets = 0

    def put_node(self, node: TreeNode) -> bool:
        try:
            existing = self.ring.get(node.key)
        except NodeMissing:
            existing = None
        if existing is not None:
            if existing == node:
                return True
            raise ImmutabilityViolation(f"conflicting put for {node.key}")
        self.ring.put(node.key, node)
        self.puts += 1
        return True

    def get_node(self, key: NodeKey) -> TreeNode:
        self.gets += 1
        return self.ring.get(key)

    def free_nodes(self, keys: list[NodeKey]) -> int:
        freed = 0
        for key in keys:
            if self.ring.delete(key):
                freed += 1
        return freed

    def list_nodes(self, blob_id: str) -> list[NodeKey]:
        return [k for k in self.ring.keys() if k.blob_id == blob_id]

    def handle(self, method: str, args: tuple) -> Any:
        if method == "meta.put_node":
            return self.put_node(*args)
        if method == "meta.get_node":
            return self.get_node(*args)
        if method == "meta.free_nodes":
            return self.free_nodes(*args)
        if method == "meta.list_nodes":
            return self.list_nodes(*args)
        raise ValueError(f"dht metadata service: unknown method {method!r}")


class SingleServiceRouter(StaticRouter):
    """Router sending every metadata key to one service address.

    Used with :class:`DhtMetadataService`: the ring handles dispersal and
    replication internally, so the blob protocols see a single logical
    endpoint. ``replication`` reports the *ring's* factor (pass the
    ring's, or build via :meth:`for_ring`) so callers that size fail-over
    attempts off ``router.replication`` see the truth; the capacity check
    against the one visible address is relaxed via the
    :class:`StaticRouter` extension point, not by skipping base-class
    initialization.
    """

    def __init__(
        self, address: Address = ("meta", 0), replication: int = 1
    ) -> None:
        self._address = address
        super().__init__((address[1],), replication=replication)

    @classmethod
    def for_ring(cls, ring: ChordRing, address: Address = ("meta", 0)) -> "SingleServiceRouter":
        """Router advertising the ring's actual replication factor."""
        return cls(address, replication=ring.replication)

    def _check_capacity(self, meta_ids, replication) -> None:
        # One visible endpoint fronts the whole ring: the ring validated
        # its own replication factor against live membership already.
        return

    def primary(self, key: NodeKey) -> Address:
        return self._address

    def route(self, key: NodeKey) -> tuple[Address, ...]:
        return (self._address,)
