"""Ring facade: membership, maintenance rounds, replicated put/get.

Drives a set of :class:`~repro.dht.chord.ChordNode` instances the way an
operator would: bootstrap, converge, add/remove nodes, and serve key
operations with k-replication and fail-over. All state transitions happen
in explicit, deterministic rounds (no threads), so every test observes the
exact same ring.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.dht.chord import ChordNode
from repro.dht.hashing import key_id
from repro.errors import NodeMissing, NotEnoughProviders


class ChordRing:
    """A Chord ring plus the client-side put/get logic."""

    def __init__(
        self,
        names: Iterable[str] = (),
        replication: int = 1,
        successor_list_size: int = 8,
    ) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.replication = replication
        self.successor_list_size = max(successor_list_size, replication + 1)
        self.nodes: dict[str, ChordNode] = {}
        self.total_lookup_hops = 0
        self.lookups = 0
        for name in names:
            self.add_node(name)

    # -- membership -----------------------------------------------------------

    def add_node(self, name: str) -> ChordNode:
        if name in self.nodes:
            raise ValueError(f"duplicate dht node name {name!r}")
        node = ChordNode(name, self.successor_list_size)
        live = self._live_nodes()
        if live:
            node.join(live[0])
        self.nodes[name] = node
        self.converge()
        if self.replication > 1:
            self.rereplicate()
        return node

    def remove_node(self, name: str, *, graceful: bool = True) -> None:
        node = self.nodes.pop(name)
        if graceful:
            node.leave()
        else:
            node.crash()
        self.converge()
        if self.replication > 1:
            self.rereplicate()

    def _live_nodes(self) -> list[ChordNode]:
        return [n for n in self.nodes.values() if n.alive]

    def __len__(self) -> int:
        return len(self._live_nodes())

    # -- maintenance ------------------------------------------------------------

    def converge(self, max_rounds: int = 64) -> int:
        """Run stabilize + fix-fingers rounds until the ring is consistent.

        Returns the number of rounds taken. Consistency check: following
        successor pointers from any node walks the full live ring in id
        order.
        """
        live = self._live_nodes()
        if not live:
            return 0
        for round_no in range(1, max_rounds + 1):
            for node in live:
                node.stabilize()
            for node in live:
                node.fix_fingers()
            if self._consistent():
                return round_no
        raise RuntimeError(f"ring failed to converge within {max_rounds} rounds")

    def _consistent(self) -> bool:
        live = sorted(self._live_nodes(), key=lambda n: n.id)
        n = len(live)
        for i, node in enumerate(live):
            expected_succ = live[(i + 1) % n]
            expected_pred = live[(i - 1) % n]
            if node.successor is not expected_succ:
                return False
            if n > 1 and node.predecessor is not expected_pred:
                return False
        return True

    def rereplicate(self) -> tuple[int, int]:
        """Re-establish the replication factor after membership changes.

        Each node pushes its keys to the current owner's replica set, and
        only once a copy has landed on every replica target does a
        non-target holder reclaim its own — copy-then-reclaim, so an
        exception between the two phases can never drop the last replica.
        Returns ``(copied, reclaimed)``.
        """
        copied = 0
        reclaimed = 0
        snapshot = [(n, list(n.store.items())) for n in self._live_nodes()]
        for node, items in snapshot:
            for key, value in items:
                owner = self.owner_of(key)
                targets = list(owner.replica_targets(self.replication))
                for t in targets:
                    if key not in t.store:
                        t.store[key] = value
                        copied += 1
                if node not in targets:
                    del node.store[key]
                    reclaimed += 1
        return copied, reclaimed

    # -- key operations ---------------------------------------------------------

    def owner_of(self, key: Any) -> ChordNode:
        live = self._live_nodes()
        if not live:
            raise NotEnoughProviders("dht ring is empty")
        owner, hops = live[0].find_successor(key_id(key))
        self.total_lookup_hops += hops
        self.lookups += 1
        return owner

    def put(self, key: Any, value: Any) -> None:
        owner = self.owner_of(key)
        for target in owner.replica_targets(self.replication):
            target.put_local(key, value)

    def get(self, key: Any) -> Any:
        owner = self.owner_of(key)
        last_error: Exception | None = None
        for target in owner.replica_targets(self.replication):
            try:
                return target.get_local(key)
            except NodeMissing as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    def delete(self, key: Any) -> int:
        owner = self.owner_of(key)
        removed = 0
        for target in owner.replica_targets(self.replication):
            if target.store.pop(key, None) is not None:
                removed += 1
        return removed

    def keys(self) -> set:
        out: set = set()
        for node in self._live_nodes():
            out.update(node.store)
        return out

    @property
    def mean_lookup_hops(self) -> float:
        return self.total_lookup_hops / self.lookups if self.lookups else 0.0

    def load_distribution(self) -> dict[str, int]:
        """Keys per live node (balance measurements in tests)."""
        return {n.name: len(n.store) for n in self._live_nodes()}
