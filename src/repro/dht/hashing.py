"""SHA-1 identifier space and circular-interval arithmetic.

Chord (like Pastry/Bamboo) places both nodes and keys on a ring of
``2**160`` identifiers; a key belongs to the first node clockwise from it
(its *successor*). All interval logic below is circular: ``(a, b]`` wraps
through zero when ``a >= b``.
"""

from __future__ import annotations

import hashlib

RING_BITS = 160
RING_SIZE = 1 << RING_BITS


def _sha1_int(data: bytes) -> int:
    return int.from_bytes(hashlib.sha1(data).digest(), "big")


def key_id(key: object) -> int:
    """Ring position of a key (hashed from its ``repr``)."""
    return _sha1_int(repr(key).encode())


def node_id(name: str) -> int:
    """Ring position of a node (hashed from its name, 'ip:port' style)."""
    return _sha1_int(f"node:{name}".encode())


def in_interval(x: int, a: int, b: int, *, inclusive_right: bool = True) -> bool:
    """Is ``x`` in the circular interval from ``a`` to ``b``?

    ``(a, b]`` by default; ``(a, b)`` with ``inclusive_right=False``.
    An empty relation (``a == b``) denotes the full ring: a single node
    owns everything.
    """
    x, a, b = x % RING_SIZE, a % RING_SIZE, b % RING_SIZE
    if a == b:
        return x != a or inclusive_right
    if a < b:
        if inclusive_right:
            return a < x <= b
        return a < x < b
    # wrapped interval
    if inclusive_right:
        return x > a or x <= b
    return x > a or x < b


def distance(a: int, b: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on the ring."""
    return (b - a) % RING_SIZE
