"""Distributed hash table substrate.

The paper stores metadata on BambooDHT, "a stable, scalable DHT
implementation", used strictly as an off-the-shelf key dispersal + lookup
service. Two implementations provide that contract here:

- :class:`~repro.metadata.router.StaticRouter` (in the metadata package):
  consistent hashing over a *fixed* provider set — what the paper's actual
  experiments use, since membership never changes mid-run;
- this package: a full Chord-style ring — ids in the SHA-1 space, finger
  tables with O(log n) iterative routing, successor lists, join/leave with
  key handoff, and k-replication — for the general dynamic case, plus a
  :class:`~repro.dht.adapter.DhtMetadataService` that serves the blob
  system's ``meta.*`` RPCs directly from the ring.
"""

from repro.dht.hashing import RING_BITS, RING_SIZE, in_interval, key_id, node_id
from repro.dht.chord import ChordNode
from repro.dht.ring import ChordRing
from repro.dht.adapter import DhtMetadataService

__all__ = [
    "RING_BITS",
    "RING_SIZE",
    "in_interval",
    "key_id",
    "node_id",
    "ChordNode",
    "ChordRing",
    "DhtMetadataService",
]
