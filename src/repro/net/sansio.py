"""Sans-io protocol vocabulary.

A *protocol* is a generator that yields operations and receives their
results; the protocol never touches sockets, threads or clocks, so the same
code runs under direct dispatch, real threads, or the discrete-event
simulator. This mirrors how the paper's client logic is one algorithm
regardless of deployment.

Operations:

- :class:`Batch` — a set of RPCs to execute **in parallel**; the driver
  resumes the protocol with the list of results in call order. Calls to the
  same destination are aggregated into one wire message by every driver.
- :class:`Compute` — a declaration of pure client-side work (``units`` of a
  named cost), so the simulator can charge client CPU for work that in a
  real deployment happens between RPCs (building tree nodes, assembling
  buffers). Non-simulated drivers treat it as a no-op, because there the
  work is actually performed by the surrounding Python code.

Failure semantics: a handler exception is wrapped in
:class:`~repro.errors.RemoteError`. By default the driver raises it at the
protocol's ``yield`` point. Calls created with ``allow_error=True`` instead
deliver the error object in the result slot, which lets protocols implement
fail-over (e.g. reading a page replica after a provider crash).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter_ns
from typing import (
    Any,
    Generator,
    Hashable,
    Mapping,
    NamedTuple,
    Protocol as TypingProtocol,
    Sequence,
    TypeVar,
    Union,
)

from repro.errors import RemoteError, ReproError
from repro.net.message import estimate_size
from repro.obs.telemetry import TELEMETRY_METHOD, telemetry_of

Address = Hashable
T = TypeVar("T")


class Call(NamedTuple):
    """One remote procedure call.

    A NamedTuple rather than a dataclass: protocols mint one ``Call`` per
    sub-call per batch (hundreds per WRITE), and tuple construction is a
    single C call where a frozen dataclass pays ``object.__setattr__`` per
    field.
    """

    dest: Address
    method: str
    args: tuple = ()
    #: estimated request payload bytes (defaults from args at driver level)
    request_bytes: int | None = None
    #: deliver RemoteError as a result instead of raising (fail-over paths)
    allow_error: bool = False

    def payload_bytes(self) -> int:
        if self.request_bytes is not None:
            return self.request_bytes
        return estimate_size(self.args)


@dataclass(frozen=True, slots=True)
class Batch:
    """Parallel RPC batch; results come back in call order."""

    calls: tuple[Call, ...]

    def __init__(self, calls: Any) -> None:
        object.__setattr__(self, "calls", tuple(calls))

    def __len__(self) -> int:
        return len(self.calls)


@dataclass(frozen=True, slots=True)
class Compute:
    """Pure client-side work declaration (priced only by the simulator)."""

    key: str
    units: float = 1.0


@dataclass(frozen=True, slots=True)
class Mark:
    """Ask the driver for the current time (phase instrumentation).

    The driver resumes the protocol with a float timestamp: simulated
    seconds under the simulator, ``time.monotonic()`` elsewhere. Protocols
    use it to fill caller-supplied trace dicts so benches can separate
    metadata-phase from data-phase time, matching what the paper's Figure
    3(a)/(b) actually plot.
    """

    name: str


Op = Union[Batch, Compute, Mark]
Protocol = Generator[Op, Any, T]


class WireGroup(NamedTuple):
    """One wire RPC: the sub-calls bound for a single destination.

    ``indices`` maps each sub-call back to its slot in the originating
    batch (``results[indices[k]] = value_of(calls[k])``); the single-group
    fast path uses a ``range``, which zips just like a list.
    """

    dest: Address
    calls: list[Call]
    indices: Sequence[int]


def plan_wire_groups(
    calls: Sequence[Call], aggregate: bool = True
) -> list[WireGroup]:
    """Frame a batch's sub-calls into wire RPCs, one per destination.

    This is the aggregating RPC framework of the paper (§V.A) as a shared,
    driver-agnostic planning step: the threaded and simulated drivers both
    execute exactly the groups returned here, so "one queue submission /
    one simulated message per destination" is a property of this function,
    not of each driver separately. With ``aggregate=False`` every sub-call
    becomes its own wire RPC (the paper's no-aggregation ablation).

    The common shapes never build the grouping dict: an empty batch, a
    single call, and an all-one-destination batch are recognized with one
    scan. Group order is first-occurrence order of each destination, which
    keeps simulated schedules (and therefore benchmark series) identical
    to per-driver grouping.
    """
    n = len(calls)
    if n == 0:
        return []
    first_dest = calls[0].dest
    if n == 1:
        return [WireGroup(first_dest, list(calls), range(1))]
    if not aggregate:
        return [
            WireGroup(call.dest, [call], (index,))
            for index, call in enumerate(calls)
        ]
    single_dest = True
    for call in calls:
        if call.dest != first_dest:
            single_dest = False
            break
    if single_dest:
        return [WireGroup(first_dest, list(calls), range(n))]
    grouped: dict[Address, tuple[list[Call], list[int]]] = {}
    for index, call in enumerate(calls):
        entry = grouped.get(call.dest)
        if entry is None:
            entry = grouped[call.dest] = ([], [])
        entry[0].append(call)
        entry[1].append(index)
    return [
        WireGroup(dest, group_calls, indices)
        for dest, (group_calls, indices) in grouped.items()
    ]


class Actor(TypingProtocol):
    """Anything that can serve RPCs: a single ``handle`` entry point."""

    def handle(self, method: str, args: tuple) -> Any: ...


def dispatch_call(actor: Actor, call: Call) -> Any:
    """Invoke a handler, converting exceptions into :class:`RemoteError`.

    Returns either the handler's value or a RemoteError instance; the
    caller decides (based on ``call.allow_error``) whether to raise.

    This is also where telemetry lives: every driver funnels sub-calls
    through here, so timing the handler here measures service time the
    same way on every deployment substrate, and intercepting the
    ``telemetry`` mini-protocol method here makes *every* actor answer it
    without any actor knowing about it.
    """
    if call.method == TELEMETRY_METHOD:
        return telemetry_of(actor).snapshot()
    t0 = perf_counter_ns()
    try:
        result = actor.handle(call.method, call.args)
        error = False
    except Exception as exc:  # noqa: BLE001 - boundary: wrap everything
        result = RemoteError.wrap(exc)
        error = True
    t1 = perf_counter_ns()
    telemetry_of(actor).record(call.method, t1 - t0, error, end_ns=t1)
    return result


def deliver(call: Call, result: Any) -> Any:
    """Apply the error-delivery policy for one call result.

    Semantic errors (``ReproError`` subclasses) re-raise with their precise
    type; infrastructure failures raise as :class:`RemoteError`.
    """
    if isinstance(result, RemoteError) and not call.allow_error:
        raise result.unwrap()
    return result


def run_inproc(proto: Protocol[T], registry: Mapping[Address, Actor]) -> T:
    """Execute a protocol by direct dispatch against actor objects.

    This is the reference driver: no parallelism, no timing — just the
    protocol semantics. Both other drivers must be observationally
    equivalent to it (asserted by tests).
    """
    import time

    try:
        op = next(proto)
        while True:
            if isinstance(op, Compute):
                op = proto.send(None)
                continue
            if isinstance(op, Mark):
                op = proto.send(time.monotonic())
                continue
            if not isinstance(op, Batch):
                raise TypeError(f"protocol yielded {op!r}, expected Batch or Compute")
            results = []
            for call in op.calls:
                actor = registry.get(call.dest)
                if actor is None:
                    raise KeyError(f"no actor registered at address {call.dest!r}")
                results.append(dispatch_call(actor, call))
            try:
                delivered = [deliver(c, r) for c, r in zip(op.calls, results)]
            except ReproError as exc:
                op = proto.throw(exc)
                continue
            op = proto.send(delivered)
    except StopIteration as stop:
        return stop.value
