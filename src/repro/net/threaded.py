"""Real-thread driver: one service thread per actor, batched queue transports.

This driver exists to demonstrate the paper's concurrency claims with real
parallelism (not simulated time): each actor — data provider, metadata
provider, version manager, provider manager — runs its own service loop
exactly like the paper's one-process-per-node deployment, and any number of
client threads issue protocols against them concurrently.

Because each actor is confined to a single service thread, actor code needs
no internal locking; the *only* serialization point in the whole data path
is the version manager's service queue — which is precisely the design the
paper argues for. Throughput numbers from this driver are not meaningful
under the GIL (see DESIGN.md); correctness under concurrency is.

Transport batching mirrors the simulated driver: both execute exactly the
wire groups planned by :func:`repro.net.sansio.plan_wire_groups`, so a
batch costs **one queue submission per destination** (one inbox item
carrying all of that destination's sub-calls) and **at most one completion
wakeup per batch** (the last destination to finish notifies the waiting
caller; every other destination only decrements a counter). Caller threads
reuse a thread-local :class:`_BatchLatch` across batches, so the hot path
allocates no locks, conditions or events per batch. The counters exposed by
:meth:`ThreadedDriver.transport_stats` make these bounds testable.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Any, Mapping

from repro.net.sansio import (
    Actor,
    Address,
    Batch,
    Compute,
    Mark,
    Protocol,
    deliver,
    dispatch_call,
    plan_wire_groups,
)
from repro.errors import ReproError
from repro.obs.hist import LatencyHistogram, merge_all
from repro.obs.spans import new_span_id, record_group_spans
from repro.obs.telemetry import telemetry_of
from repro.obs.trace import (
    clear_server_context,
    current_op_span,
    current_trace,
    set_server_context,
)

_SHUTDOWN = object()


def dest_kind(dest: Address) -> str:
    """Coarse destination label for caller-side RTT histograms.

    Tuple addresses like ``("data", 3)`` fold to their role (``"data"``)
    so RTT distributions aggregate per actor *kind*, not per instance.
    """
    if isinstance(dest, tuple) and dest and isinstance(dest[0], str):
        return dest[0]
    return str(dest)


class _BatchLatch:
    """Reusable countdown latch owned by one caller thread.

    A caller thread executes one batch at a time, so the same latch (and
    its single lock) serves every batch that thread ever runs: ``begin``
    arms it before any submission, service threads call ``group_done``
    once per wire group, and only the final decrement pays a ``notify``.

    Every batch gets a fresh generation number, carried by its inbox items
    and handed back by ``group_done``: if a caller unwinds out of ``wait``
    (e.g. KeyboardInterrupt) with groups still queued, the next ``begin``
    bumps the generation and the stale groups' completions are ignored
    instead of corrupting the new batch's countdown. (Their result writes
    land in the abandoned batch's results list, which nobody reads.)

    The latch also accumulates the owning thread's transport counters;
    :meth:`ThreadedDriver.transport_stats` sums them across threads.
    """

    __slots__ = (
        "_cond", "_pending", "_gen", "owner", "batches", "submissions",
        "wakeups", "rtt",
    )

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._pending = 0
        self._gen = 0
        self.owner = threading.current_thread()
        self.batches = 0  # batches executed by the owning thread
        self.submissions = 0  # inbox items enqueued (== wire RPCs issued)
        self.wakeups = 0  # condition notifies (≤ 1 per batch)
        # per-destination-kind round-trip histograms (single writer: owner)
        self.rtt: dict[str, LatencyHistogram] = {}

    def record_rtt(self, kind: str, rtt_ns: int) -> None:
        hist = self.rtt.get(kind)
        if hist is None:
            hist = self.rtt[kind] = LatencyHistogram()
        hist.record(rtt_ns)

    def begin(self, n_groups: int) -> int:
        """Arm for a new batch; returns the batch's generation stamp."""
        with self._cond:
            self._gen += 1
            self._pending = n_groups
        self.batches += 1
        self.submissions += n_groups
        return self._gen

    def group_done(self, gen: int) -> None:
        with self._cond:
            if gen != self._gen:
                return  # completion of an abandoned batch: ignore
            self._pending -= 1
            if self._pending <= 0:
                self.wakeups += 1
                self._cond.notify()

    def wait(self) -> None:
        with self._cond:
            while self._pending > 0:
                self._cond.wait()

    def stats(self) -> tuple[int, int, int]:
        return (self.batches, self.submissions, self.wakeups)


class _ServerThread:
    """Service loop for one actor: processes aggregated wire groups FIFO."""

    def __init__(self, address: Address, actor: Actor) -> None:
        self.address = address
        self.actor = actor
        self.inbox: queue.SimpleQueue = queue.SimpleQueue()
        self.served_calls = 0
        self.served_rpcs = 0
        self._thread = threading.Thread(
            target=self._loop, name=f"actor-{address}", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            item = self.inbox.get()
            if item is _SHUTDOWN:
                return
            calls, indices, results, latch, gen, trace, t_enq = item
            # One inbox item == one wire RPC carrying aggregated sub-calls.
            self.served_rpcs += 1
            self.served_calls += len(calls)
            set_server_context(trace, time.perf_counter_ns() - t_enq, 0)
            try:
                for call, index in zip(calls, indices):
                    results[index] = dispatch_call(self.actor, call)
            finally:
                clear_server_context()
            latch.group_done(gen)

    def stop(self) -> None:
        self.inbox.put(_SHUTDOWN)
        self._thread.join(timeout=10)


class ThreadedDriver:
    """Drives protocols from any number of caller threads."""

    def __init__(self, registry: Mapping[Address, Actor] | None = None) -> None:
        self._servers: dict[Address, _ServerThread] = {}
        self._closed = False
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._latches: list[_BatchLatch] = []
        # counters folded in from latches of retired caller threads
        self._retired_stats = [0, 0, 0]
        self._retired_rtt: dict[str, LatencyHistogram] = {}
        for address, actor in (registry or {}).items():
            self.register(address, actor)

    def register(self, address: Address, actor: Actor) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("driver is closed")
            if address in self._servers:
                raise ValueError(f"address {address!r} already registered")
            self._servers[address] = _ServerThread(address, actor)

    def addresses(self) -> list[Address]:
        with self._lock:
            return list(self._servers)

    def server_stats(self) -> dict[Address, tuple[int, int]]:
        """Per-actor ``(wire_rpcs, sub_calls)`` counters."""
        with self._lock:
            return {
                a: (s.served_rpcs, s.served_calls) for a, s in self._servers.items()
            }

    def transport_stats(self) -> dict[str, int]:
        """Aggregate transport counters across all caller threads.

        - ``batches``: protocol batches executed;
        - ``queue_submissions``: inbox items enqueued — exactly one per
          destination per batch, i.e. one per wire RPC;
        - ``completion_wakeups``: condition notifies — at most one per
          batch (only the last wire group of a batch notifies).

        Counters survive caller-thread exit (a retired thread's latch is
        folded into a running total). Read these when caller threads are
        quiescent; snapshots taken mid-batch may lag by the in-flight
        batch.
        """
        with self._lock:
            totals = list(self._retired_stats)
            latches = list(self._latches)
        for latch in latches:
            b, s, w = latch.stats()
            totals[0] += b
            totals[1] += s
            totals[2] += w
        return {
            "batches": totals[0],
            "queue_submissions": totals[1],
            "completion_wakeups": totals[2],
        }

    def caller_rtt(self) -> dict[str, LatencyHistogram]:
        """Per-destination-kind wire-RPC round-trip histograms, merged
        across every caller thread this driver has served (including
        retired ones). The returned histograms are fresh merges — safe to
        mutate."""
        with self._lock:
            latches = list(self._latches)
            merged = {
                kind: merge_all([hist])
                for kind, hist in self._retired_rtt.items()
            }
        for latch in latches:
            for kind, hist in latch.rtt.items():
                if kind in merged:
                    merged[kind].merge(hist)
                else:
                    merged[kind] = merge_all([hist])
        return merged

    def telemetry(self, address: Address) -> dict[str, Any]:
        """One actor's telemetry report: wire counters + service-time
        snapshot, same shape as the remote drivers' ``telemetry`` control
        (the scrape does not touch the actor's service queue, so it never
        perturbs the wire counters)."""
        with self._lock:
            server = self._servers.get(address)
        if server is None:
            raise KeyError(f"no actor registered at address {address!r}")
        return {
            "wire_rpcs": server.served_rpcs,
            "sub_calls": server.served_calls,
            "telemetry": telemetry_of(server.actor).snapshot(),
        }

    def _latch(self) -> _BatchLatch:
        latch = getattr(self._tls, "latch", None)
        if latch is None:
            latch = self._tls.latch = _BatchLatch()
            with self._lock:
                # Latch registration is rare (once per caller thread), so
                # this is the place to retire latches of dead threads —
                # without it, spawn-per-op usage would grow the registry
                # one Condition per protocol ever run.
                alive: list[_BatchLatch] = []
                for old in self._latches:
                    if old.owner.is_alive():
                        alive.append(old)
                    else:
                        b, s, w = old.stats()
                        self._retired_stats[0] += b
                        self._retired_stats[1] += s
                        self._retired_stats[2] += w
                        for kind, hist in old.rtt.items():
                            merged = self._retired_rtt.get(kind)
                            if merged is None:
                                merged = self._retired_rtt[kind] = (
                                    LatencyHistogram()
                                )
                            merged.merge(hist)
                alive.append(latch)
                self._latches = alive
        return latch

    def run(self, proto: Protocol[Any]) -> Any:
        """Execute a protocol; may be called concurrently from many threads."""
        try:
            op = next(proto)
            while True:
                if isinstance(op, Compute):
                    op = proto.send(None)
                    continue
                if isinstance(op, Mark):
                    op = proto.send(time.monotonic())
                    continue
                if not isinstance(op, Batch):
                    raise TypeError(
                        f"protocol yielded {op!r}, expected Batch or Compute"
                    )
                try:
                    results = self._execute_batch(op)
                except ReproError as exc:
                    op = proto.throw(exc)
                    continue
                op = proto.send(results)
        except StopIteration as stop:
            return stop.value

    def _execute_batch(self, batch: Batch) -> list[Any]:
        # Same framing as the simulated driver: one wire RPC (= one queue
        # submission) per destination. Destinations are resolved before
        # anything is enqueued so an unknown address cannot leave the latch
        # armed with groups already in flight.
        calls = batch.calls
        if not calls:
            return []
        groups = plan_wire_groups(calls)
        servers = self._servers
        resolved = []
        for group in groups:
            server = servers.get(group.dest)
            if server is None:
                raise KeyError(f"no actor registered at address {group.dest!r}")
            resolved.append(server)
        results: list[Any] = [None] * len(calls)
        latch = self._latch()
        gen = latch.begin(len(groups))
        trace = current_trace()
        # With a trace open each wire group gets a span id that rides the
        # envelope (serving-side spans parent to it); untraced batches
        # enqueue the exact historical item shape.
        span_ids = None
        parent = None
        if trace is not None:
            parent = current_op_span()
            span_ids = [new_span_id() for _ in groups]
        t_enq = time.perf_counter_ns()
        for k, (server, group) in enumerate(zip(resolved, groups)):
            wire_trace = trace if span_ids is None else (trace, span_ids[k])
            server.inbox.put(
                (group.calls, group.indices, results, latch, gen,
                 wire_trace, t_enq)
            )
        latch.wait()
        # One RTT sample per wire RPC; the batch completes as a unit, so
        # every group in it shares the batch round-trip time.
        t_done = time.perf_counter_ns()
        rtt_ns = t_done - t_enq
        for group in groups:
            latch.record_rtt(dest_kind(group.dest), rtt_ns)
        if span_ids is not None:
            record_group_spans(trace, parent, span_ids, groups, t_enq, t_done)
        return [deliver(c, r) for c, r in zip(calls, results)]

    def spawn(self, proto: Protocol[Any]) -> "ProtocolFuture":
        """Run a protocol on a fresh thread; returns a waitable future."""
        return ProtocolFuture(self, proto)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            servers = list(self._servers.values())
        for server in servers:
            server.stop()

    def __enter__(self) -> "ThreadedDriver":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


_future_ids = itertools.count(1)


class ProtocolFuture:
    """Result of :meth:`ThreadedDriver.spawn`."""

    def __init__(self, driver: ThreadedDriver, proto: Protocol[Any]) -> None:
        self._value: Any = None
        self._error: BaseException | None = None
        self._done = threading.Event()

        def _target() -> None:
            try:
                self._value = driver.run(proto)
            except BaseException as exc:  # noqa: BLE001 - carried to result()
                self._error = exc
            finally:
                self._done.set()

        self._thread = threading.Thread(
            target=_target, name=f"proto-{next(_future_ids)}", daemon=True
        )
        self._thread.start()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = 60.0) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError("protocol did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value
