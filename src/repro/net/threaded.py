"""Real-thread driver: one service thread per actor, queue transports.

This driver exists to demonstrate the paper's concurrency claims with real
parallelism (not simulated time): each actor — data provider, metadata
provider, version manager, provider manager — runs its own service loop
exactly like the paper's one-process-per-node deployment, and any number of
client threads issue protocols against them concurrently.

Because each actor is confined to a single service thread, actor code needs
no internal locking; the *only* serialization point in the whole data path
is the version manager's service queue — which is precisely the design the
paper argues for. Throughput numbers from this driver are not meaningful
under the GIL (see DESIGN.md); correctness under concurrency is.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Any, Mapping

from repro.net.sansio import (
    Actor,
    Address,
    Batch,
    Call,
    Compute,
    Mark,
    Protocol,
    deliver,
    dispatch_call,
)
from repro.errors import ReproError

_SHUTDOWN = object()


class _Completion:
    """Latch counting outstanding wire RPCs of one batch."""

    __slots__ = ("_cond", "_pending")

    def __init__(self, pending: int) -> None:
        self._cond = threading.Condition()
        self._pending = pending

    def one_done(self) -> None:
        with self._cond:
            self._pending -= 1
            if self._pending <= 0:
                self._cond.notify_all()

    def wait(self) -> None:
        with self._cond:
            while self._pending > 0:
                self._cond.wait()


class _ServerThread:
    """Service loop for one actor: processes aggregated call groups FIFO."""

    def __init__(self, address: Address, actor: Actor) -> None:
        self.address = address
        self.actor = actor
        self.inbox: queue.SimpleQueue = queue.SimpleQueue()
        self.served_calls = 0
        self.served_rpcs = 0
        self._thread = threading.Thread(
            target=self._loop, name=f"actor-{address}", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            item = self.inbox.get()
            if item is _SHUTDOWN:
                return
            calls, indices, results, completion = item
            # One inbox item == one wire RPC carrying aggregated sub-calls.
            self.served_rpcs += 1
            for call, index in zip(calls, indices):
                results[index] = dispatch_call(self.actor, call)
                self.served_calls += 1
            completion.one_done()

    def stop(self) -> None:
        self.inbox.put(_SHUTDOWN)
        self._thread.join(timeout=10)


class ThreadedDriver:
    """Drives protocols from any number of caller threads."""

    def __init__(self, registry: Mapping[Address, Actor] | None = None) -> None:
        self._servers: dict[Address, _ServerThread] = {}
        self._closed = False
        self._lock = threading.Lock()
        for address, actor in (registry or {}).items():
            self.register(address, actor)

    def register(self, address: Address, actor: Actor) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("driver is closed")
            if address in self._servers:
                raise ValueError(f"address {address!r} already registered")
            self._servers[address] = _ServerThread(address, actor)

    def addresses(self) -> list[Address]:
        with self._lock:
            return list(self._servers)

    def server_stats(self) -> dict[Address, tuple[int, int]]:
        """Per-actor ``(wire_rpcs, sub_calls)`` counters."""
        with self._lock:
            return {
                a: (s.served_rpcs, s.served_calls) for a, s in self._servers.items()
            }

    def run(self, proto: Protocol[Any]) -> Any:
        """Execute a protocol; may be called concurrently from many threads."""
        try:
            op = next(proto)
            while True:
                if isinstance(op, Compute):
                    op = proto.send(None)
                    continue
                if isinstance(op, Mark):
                    op = proto.send(time.monotonic())
                    continue
                if not isinstance(op, Batch):
                    raise TypeError(
                        f"protocol yielded {op!r}, expected Batch or Compute"
                    )
                try:
                    results = self._execute_batch(op)
                except ReproError as exc:
                    op = proto.throw(exc)
                    continue
                op = proto.send(results)
        except StopIteration as stop:
            return stop.value

    def _execute_batch(self, batch: Batch) -> list[Any]:
        # Group sub-calls by destination: one wire RPC per destination,
        # mirroring the aggregating RPC framework of the paper.
        groups: dict[Address, tuple[list[Call], list[int]]] = {}
        for index, call in enumerate(batch.calls):
            calls, indices = groups.setdefault(call.dest, ([], []))
            calls.append(call)
            indices.append(index)
        results: list[Any] = [None] * len(batch.calls)
        completion = _Completion(len(groups))
        for dest, (calls, indices) in groups.items():
            server = self._servers.get(dest)
            if server is None:
                raise KeyError(f"no actor registered at address {dest!r}")
            server.inbox.put((calls, indices, results, completion))
        completion.wait()
        return [deliver(c, r) for c, r in zip(batch.calls, results)]

    def spawn(self, proto: Protocol[Any]) -> "ProtocolFuture":
        """Run a protocol on a fresh thread; returns a waitable future."""
        return ProtocolFuture(self, proto)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            servers = list(self._servers.values())
        for server in servers:
            server.stop()

    def __enter__(self) -> "ThreadedDriver":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


_future_ids = itertools.count(1)


class ProtocolFuture:
    """Result of :meth:`ThreadedDriver.spawn`."""

    def __init__(self, driver: ThreadedDriver, proto: Protocol[Any]) -> None:
        self._value: Any = None
        self._error: BaseException | None = None
        self._done = threading.Event()

        def _target() -> None:
            try:
                self._value = driver.run(proto)
            except BaseException as exc:  # noqa: BLE001 - carried to result()
                self._error = exc
            finally:
                self._done.set()

        self._thread = threading.Thread(
            target=_target, name=f"proto-{next(_future_ids)}", daemon=True
        )
        self._thread.start()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = 60.0) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError("protocol did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value
