"""Wire codec: length-prefixed pickle frames for the process transport.

Until the process driver existed, the "wire" was purely a cost model —
:mod:`repro.net.message` estimates byte counts and nothing is ever
serialized. This module is the real encode/decode path: every RPC batch,
result list and control message crossing a process boundary travels as one
**frame**::

    +----------------+---------------------------+
    | length: u32 BE | body: pickle (protocol 5) |
    +----------------+---------------------------+

The length prefix covers the body only, so frames are self-delimiting on
any byte stream (pipes, sockets); :class:`FrameDecoder` reassembles them
from arbitrary chunk boundaries. ``multiprocessing`` pipes already carry
message boundaries, so over a pipe the prefix is redundant framing — but
it is *verified* on every decode, which keeps the codec honest enough to
drop onto a raw socket unchanged (the conformance tests stream frames
through a socketpair to prove it).

What pickling means for the system's types:

- :class:`~repro.providers.page.PagePayload` defines ``__reduce__``:
  memoryview-backed (zero-copy) payloads materialize to ``bytes`` exactly
  once at the boundary; virtual payloads travel as a byte count.
- :class:`~repro.errors.RemoteError` ships its type name and message
  always, and the wrapped original exception only when it is itself
  picklable (semantic errors like ``VersionNotPublished`` define
  ``__reduce__`` so they survive typed).
- Everything else on the RPC surface — ``PageKey``/``NodeKey`` named
  tuples, frozen ``TreeNode``/``WriteTicket`` dataclasses, ints, strings,
  containers — pickles natively.

``encode_frame`` refuses silently-wrong output: if the object graph cannot
pickle, :class:`WireCodecError` carries the offending object's repr so the
bug points at the handler that returned it, not at a pipe EOF in another
process.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterator

from repro.errors import ReproError

#: pickle protocol 5: out-of-band-buffer capable, Python >= 3.8
WIRE_PICKLE_PROTOCOL = min(5, pickle.HIGHEST_PROTOCOL)

_LEN = struct.Struct(">I")
LENGTH_PREFIX_BYTES = _LEN.size

#: hard ceiling on one frame's body (256 MB); a corrupt or misaligned
#: length prefix otherwise reads as a multi-GB allocation request
MAX_FRAME_BYTES = 256 * 1024 * 1024


class WireCodecError(ReproError):
    """A frame could not be encoded or decoded."""


def encode_frame(obj: Any) -> bytes:
    """Serialize ``obj`` into one length-prefixed frame."""
    try:
        body = pickle.dumps(obj, protocol=WIRE_PICKLE_PROTOCOL)
    except Exception as exc:
        raise WireCodecError(
            f"cannot encode {type(obj).__name__} for the wire: {exc!r}"
        ) from exc
    if len(body) > MAX_FRAME_BYTES:
        raise WireCodecError(
            f"frame body of {len(body)} B exceeds MAX_FRAME_BYTES"
        )
    return _LEN.pack(len(body)) + body


def decode_frame(frame: bytes) -> Any:
    """Decode one complete frame (prefix + body), verifying the prefix."""
    if len(frame) < LENGTH_PREFIX_BYTES:
        raise WireCodecError(f"short frame: {len(frame)} B")
    (length,) = _LEN.unpack_from(frame)
    body = memoryview(frame)[LENGTH_PREFIX_BYTES:]
    if body.nbytes != length:
        raise WireCodecError(
            f"length prefix says {length} B but frame carries {body.nbytes} B"
        )
    return _decode_body(body)


def _decode_body(body: Any) -> Any:
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise WireCodecError(f"cannot decode frame body: {exc!r}") from exc


# ---------------------------------------------------------------------------
# message framing: the RPC channel layout
# ---------------------------------------------------------------------------

#: message header: body length (u32, counts the req-id field + body) and
#: the request id (u64). Carrying the id *outside* the pickle body lets a
#: receiver route a reply to its waiting caller without unpickling — the
#: process driver's receiver threads only ever touch the header, and the
#: (possibly megabytes-large) body is decoded by the thread that wants it.
_MSG = struct.Struct(">IQ")
MESSAGE_HEADER_BYTES = _MSG.size
_REQ_ID_BYTES = 8


def encode_message(req_id: int, obj: Any) -> bytes:
    """One RPC message: ``[length][req_id][pickle body]``."""
    try:
        body = pickle.dumps(obj, protocol=WIRE_PICKLE_PROTOCOL)
    except Exception as exc:
        raise WireCodecError(
            f"cannot encode {type(obj).__name__} for the wire: {exc!r}"
        ) from exc
    if len(body) > MAX_FRAME_BYTES:
        raise WireCodecError(
            f"message body of {len(body)} B exceeds MAX_FRAME_BYTES"
        )
    return _MSG.pack(_REQ_ID_BYTES + len(body), req_id) + body


def decode_body(body: bytes | bytearray | memoryview) -> Any:
    """Decode a message body previously yielded by :class:`MessageDecoder`."""
    return _decode_body(body)


class MessageDecoder:
    """Incremental decoder for a stream of RPC messages.

    Yields ``(req_id, body)`` pairs with the body still *encoded* (bytes):
    routing happens on the 12-byte header alone, and the consumer decides
    where (on which thread) to pay the unpickling.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes | bytearray | memoryview) -> Iterator[tuple[int, bytes]]:
        self._buf += data
        while True:
            if len(self._buf) < MESSAGE_HEADER_BYTES:
                return
            length, req_id = _MSG.unpack_from(self._buf)
            if length < _REQ_ID_BYTES or length - _REQ_ID_BYTES > MAX_FRAME_BYTES:
                raise WireCodecError(
                    f"message of {length} B outside sane bounds "
                    "(corrupt length prefix?)"
                )
            end = MESSAGE_HEADER_BYTES + length - _REQ_ID_BYTES
            if len(self._buf) < end:
                return
            body = bytes(memoryview(self._buf)[MESSAGE_HEADER_BYTES:end])
            del self._buf[:end]
            yield req_id, body

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)


class FrameDecoder:
    """Incremental decoder for a byte *stream* of frames.

    Feed arbitrary chunks (as read from a socket); complete objects come
    out in order. Partial frames are buffered across feeds, so chunk
    boundaries never matter.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes | bytearray | memoryview) -> Iterator[Any]:
        self._buf += data
        while True:
            if len(self._buf) < LENGTH_PREFIX_BYTES:
                return
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise WireCodecError(
                    f"frame of {length} B exceeds MAX_FRAME_BYTES "
                    "(corrupt length prefix?)"
                )
            end = LENGTH_PREFIX_BYTES + length
            if len(self._buf) < end:
                return
            body = bytes(memoryview(self._buf)[LENGTH_PREFIX_BYTES:end])
            del self._buf[:end]
            yield _decode_body(body)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)
