"""Asyncio client driver: one event loop multiplexing every TCP peer.

The ninth certified configuration and the first driver built for *client
scale* rather than actor placement: the blocking drivers dedicate two
threads per connection (sender + receiver) and one caller thread per
in-flight protocol, which tops out around the paper's 64 clients; this
driver runs a single event-loop thread that multiplexes all peer sockets
and any number of client coroutines — 10k concurrent client programs are
ordinary (`benchmarks/test_many_clients.py` sweeps exactly that).

Nothing about the *protocol* changes, which is the point of the sans-io
layering:

- the wire format is the untouched :mod:`repro.net.codec` pickle frames,
  fed through the same :class:`~repro.net.codec.MessageDecoder` the
  blocking drivers use (the async reader just exercises partial-read
  reassembly much harder — pinned by the codec fuzz test);
- batches execute exactly the groups :func:`~repro.net.sansio.plan_wire_groups`
  plans — one frame per destination per batch — so wire-RPC counts are
  bit-equal to every other driver (pinned by the conformance suite);
- failure semantics mirror :class:`~repro.net.tcp.TcpPeer`: a dead
  connection drains every in-flight call as
  :class:`~repro.errors.RemoteError`, later calls fail fast while the
  peer is down, and a connector task redials with exponential backoff so
  a restarted agent resumes service with no driver restart.

Concurrency model: **everything about a peer is event-loop-confined.**
Peer state (`_pending`, writer, down reason) is touched only from the
loop thread, so there are no locks on the hot path; the pieces that
cross threads — the per-batch :class:`_AioLatch` (an in-parent actor's
service thread may complete a group) and the connected/down flags read
by the sync facade — use a lock plus ``call_soon_threadsafe`` and
``threading.Event`` mirrors respectively.

Two client surfaces share the driver:

- **async-native**: :meth:`AioDriver.drive` is an awaitable protocol
  executor; :class:`~repro.core.client.AsyncBlobClient` (re-exported
  here) wraps it in awaitable ``read``/``write``/``read_into`` methods.
  Client coroutines must run on the driver's loop (``run_async`` /
  ``spawn`` put them there).
- **sync facade**: :meth:`AioDriver.run` and :meth:`AioDriver.spawn`
  match the :class:`~repro.net.threaded.ThreadedDriver` surface exactly
  — protocol in, result out, ``ProtocolFuture``-shaped handle — which is
  what lets the conformance suite replay its seeded workloads unchanged
  and lets :func:`repro.deploy.tcp.build_tcp` swap this driver in with
  ``client="aio"``.

Observability parity: caller RTT histograms fold into
:meth:`AioDriver.caller_rtt` (the PR 8 metrics scrape reads them like
any driver's), and traced operations — either a thread-side
:func:`repro.obs.spans.trace_operation` around the sync facade or an
async-side :func:`trace_async_operation` around awaited ops — export
rpc spans with the same parenting as the blocking drivers. Because the
wire activity happens off the calling thread, the sync facade closes the
caller's coverage watermark over the whole driver-run window via
:func:`repro.obs.spans.advance_op_mark`.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from contextlib import asynccontextmanager
from contextvars import ContextVar
from typing import Any, AsyncIterator, Callable, Mapping

from repro.errors import RemoteError, ReproError
from repro.net.address import Endpoint, format_actor, parse_endpoint
from repro.net.codec import (
    MessageDecoder,
    WireCodecError,
    decode_body,
    encode_message,
)
from repro.net.node import HANDSHAKE_REQ_ID, HandshakeError
from repro.net.sansio import (
    Actor,
    Address,
    Batch,
    Call,
    Compute,
    Mark,
    Protocol,
    WireGroup,
    deliver,
    plan_wire_groups,
)
from repro.net.tcp import BACKOFF_INITIAL, BACKOFF_MAX
from repro.net.threaded import _ServerThread, dest_kind
from repro.net.wire import (
    CTL_SHUTDOWN,
    CTL_STATS,
    CTL_TELEMETRY,
    RECV_CHUNK,
    RemoteActorDriver,
    tune_socket,
)
from repro.obs.hist import LatencyHistogram, merge_all
from repro.obs.spans import (
    CALLER,
    advance_op_mark,
    make_span,
    new_span_id,
    record_rpc_span,
    span_now,
    to_span_ns,
)
from repro.obs.telemetry import telemetry_of
from repro.obs.trace import current_op_span, current_trace, new_trace_id

__all__ = [
    "AioDriver",
    "AioPeer",
    "AioProtocolFuture",
    "AsyncBlobClient",
    "trace_async_operation",
]


def __getattr__(name: str) -> Any:
    # Lazy re-export of the async client surface: repro.core.client sits
    # above the net layer (it imports the protocol stack), so importing
    # it at module top would cycle through package init.
    if name == "AsyncBlobClient":
        from repro.core.client import AsyncBlobClient

        return AsyncBlobClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: (trace_id, op_span_id) of the async operation open in this task's
#: context — the event-loop analogue of the thread-local trace context
#: (one coroutine chain = one logical operation).
_task_trace: ContextVar[tuple[int, int] | None] = ContextVar(
    "repro_aio_trace", default=None
)


@asynccontextmanager
async def trace_async_operation(
    name: str,
    trace_id: int | None = None,
    *,
    collector: Callable[[dict[str, Any]], None] | None = None,
) -> AsyncIterator[int]:
    """Trace one logical async operation (the coroutine-side twin of
    :func:`repro.obs.spans.trace_operation`).

    Thread-locals cannot carry trace context on an event loop — thousands
    of coroutines interleave on one thread — so the context rides a
    ``contextvars.ContextVar`` instead: every batch the surrounded
    coroutine drives through :meth:`AioDriver.drive` carries the trace id
    on its wire envelopes and records rpc spans parented to the op span,
    exactly like a traced thread on the blocking drivers. On exit the
    op's own span is recorded into the caller buffer (or handed to
    ``collector``). Yields the trace id.
    """
    tid = trace_id if trace_id is not None else new_trace_id()
    sid = new_span_id()
    token = _task_trace.set((tid, sid))
    t0 = span_now()
    failed = False
    try:
        yield tid
    except BaseException:
        failed = True
        raise
    finally:
        t1 = span_now()
        _task_trace.reset(token)
        record = collector or CALLER.record
        record(
            make_span(tid, sid, None, "op", name, "client", t0, t1, error=failed)
        )


class _AioLatch:
    """Per-batch countdown releasing an asyncio event.

    Group completions arrive from the loop thread (peer replies, fail-fast
    submits) *and* from in-parent actors' service threads, so the count is
    lock-guarded and the final decrement schedules ``event.set`` onto the
    loop with ``call_soon_threadsafe`` (safe from both). The ``gen``
    argument exists for handle-contract compatibility with
    :class:`~repro.net.threaded._BatchLatch` (one latch per batch here, so
    generations are moot).
    """

    __slots__ = ("_loop", "_event", "_lock", "_pending")

    def __init__(self, loop: asyncio.AbstractEventLoop, n_groups: int) -> None:
        self._loop = loop
        self._event = asyncio.Event()
        self._lock = threading.Lock()
        self._pending = n_groups

    def group_done(self, gen: int) -> None:
        with self._lock:
            self._pending -= 1
            if self._pending > 0:
                return
        self._loop.call_soon_threadsafe(self._event.set)

    async def wait(self) -> None:
        await self._event.wait()


class AioPeer:
    """One remote actor on the event loop: an asyncio stream when
    connected, a fast-failing stub plus a backoff reconnector task when
    not. All state is loop-confined except the ``threading.Event``
    connection mirror the sync facade waits on.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        address: Address,
        endpoint: Endpoint,
        *,
        connect_timeout: float = 5.0,
        backoff_initial: float = BACKOFF_INITIAL,
        backoff_max: float = BACKOFF_MAX,
    ) -> None:
        self.address = address
        self.actor_name = format_actor(address)
        self.endpoint = parse_endpoint(endpoint)
        self._loop = loop
        self._connect_timeout = connect_timeout
        self._backoff_initial = backoff_initial
        self._backoff_max = backoff_max
        self._writer: asyncio.StreamWriter | None = None
        self._down_reason: str | None = (
            f"peer {self.actor_name}@{self.endpoint} never connected"
        )
        self._closed = False
        #: req_id -> ("rpc", slot, latch, gen) | ("ctl", future)
        self._pending: dict[int, tuple] = {}
        self._req_ids = itertools.count(1)
        self._connected_sync = threading.Event()  # cross-thread mirror
        self._connector = loop.create_task(
            self._connect_loop(), name=f"dial-{self.actor_name}"
        )

    # -- health ----------------------------------------------------------

    @property
    def connected(self) -> bool:
        """True while a live connection is installed (any thread)."""
        return self._connected_sync.is_set()

    @property
    def down_reason(self) -> str | None:
        """Why the peer is unreachable right now (None when connected)."""
        if self._connected_sync.is_set():
            return None
        return self._down_reason

    def wait_connected(self, timeout: float | None = None) -> bool:
        """Block the *calling thread* until connected (sync facade)."""
        return self._connected_sync.wait(timeout)

    # -- connector task --------------------------------------------------

    async def _connect_loop(self) -> None:
        """Dial → handshake → serve the receive loop; on death, back off
        and redial. The connector is the only task that installs writers,
        and ``_recv_loop`` only returns after ``_mark_down`` cleared the
        installed one — so at most one live connection exists at a time.
        """
        backoff = self._backoff_initial
        while not self._closed:
            try:
                reader, writer, decoder = await self._dial()
            except (OSError, ReproError) as exc:
                self._down_reason = (
                    f"peer {self.actor_name}@{self.endpoint} unreachable: {exc}"
                )
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self._backoff_max)
                continue
            if self._closed:
                writer.close()
                return
            self._writer = writer
            self._down_reason = None
            self._connected_sync.set()
            backoff = self._backoff_initial
            await self._recv_loop(reader, decoder)

    async def _dial(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter, MessageDecoder]:
        """Async twin of :func:`repro.net.node.connect_and_handshake`.

        Returns the stream pair *and* the handshake's decoder: replies
        pipelined behind the welcome may already sit (whole or partial)
        in its buffer, so the receive loop must resume it, never replace
        it — the same invariant the agent honors on its side.
        """
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                self.endpoint.host, self.endpoint.port, limit=RECV_CHUNK
            ),
            self._connect_timeout,
        )
        try:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                tune_socket(sock)
            writer.write(
                encode_message(HANDSHAKE_REQ_ID, ("hello", self.actor_name))
            )
            await writer.drain()
            decoder = MessageDecoder()
            reply = None
            while reply is None:
                chunk = await asyncio.wait_for(
                    reader.read(4096), self._connect_timeout
                )
                if not chunk:
                    raise HandshakeError(
                        f"agent at {self.endpoint} closed the connection "
                        "mid-handshake"
                    )
                for _req_id, body in decoder.feed(chunk):
                    reply = decode_body(body)
                    break
            if (
                not isinstance(reply, tuple)
                or len(reply) != 2
                or reply[0] not in ("welcome", "reject")
            ):
                raise HandshakeError(
                    f"bad handshake reply from {self.endpoint}: {reply!r}"
                )
            if reply[0] == "reject":
                raise HandshakeError(
                    f"agent at {self.endpoint} rejected "
                    f"{self.actor_name!r}: {reply[1]}"
                )
            return reader, writer, decoder
        except BaseException:
            writer.close()
            raise

    async def _recv_loop(
        self, reader: asyncio.StreamReader, decoder: MessageDecoder
    ) -> None:
        """Route raw reply bodies by header; on EOF/corruption, drain."""
        while True:
            try:
                chunk = await reader.read(RECV_CHUNK)
            except OSError:
                chunk = b""
            if not chunk:
                self._mark_down(
                    f"peer {self.actor_name}@{self.endpoint} connection lost"
                )
                return
            try:
                for req_id, body in decoder.feed(chunk):
                    entry = self._pending.pop(req_id, None)
                    if entry is not None:
                        self._complete(entry, body)
            except WireCodecError as exc:
                self._mark_down(
                    f"peer {self.actor_name}@{self.endpoint} sent a corrupt "
                    f"message: {exc}"
                )
                return

    @staticmethod
    def _complete(entry: tuple, body: Any) -> None:
        if entry[0] == "rpc":
            _, slot, latch, gen = entry
            slot[0] = body
            latch.group_done(gen)
        else:
            _, fut = entry
            if not fut.done():
                fut.set_result(body)

    def _mark_down(self, reason: str) -> None:
        """Drain-as-RemoteError, exactly once per connection (loop thread).

        The guard mirrors :meth:`repro.net.wire.RpcChannel.mark_down`:
        ``_down_reason`` is None exactly while a connection is installed,
        so of the racing death signals (EOF, send failure, drop, close)
        only the first drains — no batch latch is ever released twice.
        """
        if self._down_reason is not None:
            return
        self._down_reason = reason
        self._connected_sync.clear()
        writer, self._writer = self._writer, None
        drained = list(self._pending.values())
        self._pending.clear()
        error = RemoteError("PeerUnavailable", reason)
        for entry in drained:
            self._complete(entry, error)
        if writer is not None:
            writer.close()

    # -- RPC surface (the remote-handle contract, loop thread only) ------

    def submit(
        self,
        group: WireGroup,
        slot: list,
        latch: _AioLatch,
        gen: int,
        trace: Any = None,
    ) -> None:
        """Send one wire group; the receive loop completes the latch.

        Never blocks and never awaits: frames enter the transport's write
        buffer directly (the asyncio analogue of the blocking channels'
        outbox queue — a submit is never stuck on a busy peer's socket
        backpressure). Fails fast with a typed error while the peer is
        down.
        """
        writer = self._writer
        if writer is None:
            slot[0] = RemoteError("PeerUnavailable", self._down_reason)
            latch.group_done(gen)
            return
        payload = [(call.method, call.args) for call in group.calls]
        envelope = ("rpc", payload) if trace is None else ("rpc", payload, trace)
        req_id = next(self._req_ids)
        try:
            frame = encode_message(req_id, envelope)
        except WireCodecError as exc:
            # the *request* is unpicklable: that call is broken, not the peer
            slot[0] = RemoteError.wrap(exc)
            latch.group_done(gen)
            return
        self._pending[req_id] = ("rpc", slot, latch, gen)
        try:
            writer.write(frame)
        except Exception as exc:  # transport already torn down under us
            if self._pending.pop(req_id, None) is not None:
                self._mark_down(
                    f"send to peer {self.actor_name}@{self.endpoint} "
                    f"failed: {exc!r}"
                )

    async def control(self, kind: str, timeout: float = 10.0) -> Any:
        """Round-trip one control message; raises on a down connection."""
        writer = self._writer
        if writer is None:
            raise RemoteError("PeerUnavailable", self._down_reason)
        req_id = next(self._req_ids)
        fut: asyncio.Future = self._loop.create_future()
        self._pending[req_id] = ("ctl", fut)
        writer.write(encode_message(req_id, (kind, ())))
        try:
            body = await asyncio.wait_for(fut, timeout)
        except (asyncio.TimeoutError, TimeoutError):
            self._pending.pop(req_id, None)
            raise TimeoutError(
                f"peer {self.actor_name} did not answer {kind!r} in {timeout}s"
            ) from None
        if isinstance(body, RemoteError):
            raise body
        value = decode_body(body)
        if isinstance(value, RemoteError):
            raise value
        return value

    # -- lifecycle (loop thread) -----------------------------------------

    def stop(self, send_shutdown: bool = True, timeout: float = 10.0) -> None:
        """Stop the peer from any thread *except* the loop thread — the
        blocking facade over :meth:`stop_async` (drain code calls
        ``peer.stop()`` on whichever driver it was handed)."""
        asyncio.run_coroutine_threadsafe(
            self.stop_async(send_shutdown=send_shutdown, timeout=timeout),
            self._loop,
        ).result(timeout + 5.0)

    async def stop_async(
        self, send_shutdown: bool = True, timeout: float = 10.0
    ) -> None:
        """Orderly shutdown: tell the remote actor to stop, then hang up
        (``send_shutdown=False`` only hangs up — the teardown against
        operator-run agents that must keep serving)."""
        if self._closed:
            return
        self._closed = True
        if send_shutdown and self._writer is not None:
            try:
                await self.control(CTL_SHUTDOWN, timeout=timeout)
            except (RemoteError, TimeoutError):
                pass  # peer already dead or wedged; just hang up
        self._mark_down(
            "peer stopped by driver close"
            if send_shutdown
            else "peer aborted (driver hang-up)"
        )
        self._connector.cancel()
        try:
            await self._connector
        except asyncio.CancelledError:
            pass

    def drop(self) -> None:
        """Sever the current connection without closing the peer (failure
        injection: the connector redials with backoff). Any thread."""
        self._loop.call_soon_threadsafe(
            self._mark_down, "connection dropped (failure injection)"
        )


class AioProtocolFuture:
    """Result handle of :meth:`AioDriver.spawn` — the event-loop twin of
    :class:`~repro.net.threaded.ProtocolFuture` (``done()`` /
    ``result(timeout)``), wrapping the coroutine's cross-thread future."""

    def __init__(self, driver: "AioDriver", proto: Protocol[Any]) -> None:
        self._fut = asyncio.run_coroutine_threadsafe(
            driver.drive(proto), driver.loop
        )

    def done(self) -> bool:
        """True once the protocol coroutine finished (or failed)."""
        return self._fut.done()

    def result(self, timeout: float | None = 60.0) -> Any:
        """The protocol's return value; re-raises its error."""
        try:
            return self._fut.result(timeout)
        except TimeoutError:
            if not self._fut.done():
                raise TimeoutError("protocol did not complete in time") from None
            raise


class AioDriver:
    """Drives protocols against TCP-remote and in-parent actors from one
    event loop.

    ``register`` places an actor on an in-parent service thread (the
    threaded driver's semantics — deployments keep the vm and pm there
    under ``control_plane="parent"``); ``register_remote`` binds an
    address to a node-agent endpoint served by an :class:`AioPeer`. The
    loop lives on a dedicated daemon thread the driver owns, so the sync
    facade (``run``/``spawn``/``call``/stats) works from any thread while
    async-native clients run coroutines on the loop via ``run_async``.
    """

    def __init__(
        self,
        registry: Mapping[Address, Actor] | None = None,
        *,
        connect_timeout: float = 5.0,
    ) -> None:
        self._connect_timeout = connect_timeout
        self._servers: dict[Address, _ServerThread] = {}
        self._remotes: dict[Address, AioPeer] = {}
        self._closed = False
        self._lock = threading.Lock()
        # transport counters + RTT histograms: loop-thread writers only
        self._batches = 0
        self._submissions = 0
        self._wakeups = 0
        self._rtt: dict[str, LatencyHistogram] = {}
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop_main, name="aio-driver", daemon=True
        )
        self._thread.start()
        for address, actor in (registry or {}).items():
            self.register(address, actor)

    def _loop_main(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_forever()
        finally:
            # Backstop against orphans: close() already stopped every
            # peer, so anything still pending here is cancelled, awaited
            # and only then is the loop closed — no "Task was destroyed
            # but it is pending!" at interpreter exit.
            tasks = asyncio.all_tasks(self.loop)
            for task in tasks:
                task.cancel()
            if tasks:
                self.loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            self.loop.run_until_complete(self.loop.shutdown_asyncgens())
            self.loop.close()

    def set_debug(self, flag: bool = True) -> None:
        """Toggle asyncio debug mode on the driver's loop (slow-callback
        and never-awaited diagnostics; the stress suite turns it on)."""
        self.loop.call_soon_threadsafe(self.loop.set_debug, flag)

    def run_async(self, coro: Any, timeout: float | None = None) -> Any:
        """Run a coroutine on the driver's loop; block the calling thread
        for its result. The bridge async-native clients use to enter the
        loop (e.g. ``driver.run_async(main())`` gathering 10k client
        coroutines)."""
        if threading.current_thread() is self._thread:
            raise RuntimeError(
                "run_async called from the event-loop thread (await instead)"
            )
        try:
            fut = asyncio.run_coroutine_threadsafe(coro, self.loop)
        except RuntimeError:  # loop already closed: don't leak the coroutine
            coro.close()
            raise
        return fut.result(timeout)

    # -- registration ----------------------------------------------------

    def register(self, address: Address, actor: Actor) -> None:
        """Place an actor on an in-parent service thread."""
        with self._lock:
            if self._closed:
                raise RuntimeError("driver is closed")
            if address in self._servers or address in self._remotes:
                raise ValueError(f"address {address!r} already registered")
            self._servers[address] = _ServerThread(address, actor)

    def register_remote(
        self, address: Address, endpoint: Endpoint | str
    ) -> AioPeer:
        """Bind ``address`` to a node-agent endpoint; dialing starts
        immediately on the event loop (use :meth:`wait_connected` to
        block until the cluster is reachable)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("driver is closed")
        endpoint = parse_endpoint(endpoint)

        async def _make() -> AioPeer:
            return AioPeer(
                self.loop, address, endpoint,
                connect_timeout=self._connect_timeout,
            )

        peer = self.run_async(_make())
        with self._lock:
            duplicate = (
                self._closed
                or address in self._servers
                or address in self._remotes
            )
            if not duplicate:
                self._remotes[address] = peer
        if duplicate:
            self.run_async(peer.stop_async(send_shutdown=False))
            if self._closed:
                raise RuntimeError("driver is closed")
            raise ValueError(f"address {address!r} already registered")
        return peer

    def register_map(self, cluster_map) -> None:
        """Register every actor of a cluster map."""
        for address, endpoint in cluster_map.items():
            self.register_remote(address, endpoint)

    def peer(self, address: Address) -> AioPeer:
        """The :class:`AioPeer` registered at ``address``."""
        with self._lock:
            return self._remotes[address]

    def addresses(self) -> list[Address]:
        """Every registered address (in-parent first, then remote)."""
        with self._lock:
            return list(self._servers) + list(self._remotes)

    def remote_addresses(self) -> list[Address]:
        """The addresses served over the wire."""
        with self._lock:
            return list(self._remotes)

    # -- health ----------------------------------------------------------

    def wait_connected(self, timeout: float = 10.0) -> None:
        """Block until every registered peer holds a live connection;
        raises ``TimeoutError`` naming the unreachable peers."""
        deadline = time.monotonic() + timeout
        with self._lock:
            peers = list(self._remotes.values())
        laggards = []
        for peer in peers:
            remaining = deadline - time.monotonic()
            if not peer.wait_connected(max(0.0, remaining)):
                laggards.append(
                    f"{peer.actor_name}@{peer.endpoint} ({peer.down_reason})"
                )
        if laggards:
            raise TimeoutError(
                f"peers not connected within {timeout}s: " + "; ".join(laggards)
            )

    def peer_status(self) -> dict[Address, str]:
        """``address -> "connected" | down reason`` for every peer."""
        with self._lock:
            peers = dict(self._remotes)
        return {
            a: ("connected" if p.connected else str(p.down_reason))
            for a, p in peers.items()
        }

    # -- introspection ---------------------------------------------------

    def server_stats(self) -> dict[Address, tuple[int, int]]:
        """Per-actor ``(wire_rpcs, sub_calls)``, queried over the wire for
        remote actors (raises ``RemoteError`` for a dead peer)."""
        with self._lock:
            servers = dict(self._servers)
            remotes = dict(self._remotes)
        stats = {a: (s.served_rpcs, s.served_calls) for a, s in servers.items()}
        for address, peer in remotes.items():
            reply = self.run_async(peer.control(CTL_STATS))
            stats[address] = (reply["wire_rpcs"], reply["sub_calls"])
        return stats

    def transport_stats(self) -> dict[str, int]:
        """Aggregate transport counters (same shape and bounds as
        :meth:`repro.net.threaded.ThreadedDriver.transport_stats` — one
        queue submission per destination per batch, at most one
        completion wakeup per batch)."""
        return {
            "batches": self._batches,
            "queue_submissions": self._submissions,
            "completion_wakeups": self._wakeups,
        }

    def caller_rtt(self) -> dict[str, LatencyHistogram]:
        """Per-destination-kind wire-RPC round-trip histograms across
        every protocol this driver executed. Fresh merges — safe to
        mutate; read when callers are quiescent (single-writer loop)."""
        return {kind: merge_all([hist]) for kind, hist in self._rtt.items()}

    def telemetry(self, address: Address) -> dict[str, Any]:
        """One actor's telemetry report, queried as a *control* for
        remote actors (controls are not counted as wire RPCs, so scraping
        is invisible to workload counters)."""
        with self._lock:
            server = self._servers.get(address)
            remote = self._remotes.get(address)
        if server is not None:
            return {
                "wire_rpcs": server.served_rpcs,
                "sub_calls": server.served_calls,
                "telemetry": telemetry_of(server.actor).snapshot(),
            }
        if remote is None:
            raise KeyError(f"no actor registered at address {address!r}")
        return self.run_async(remote.control(CTL_TELEMETRY))

    def call(self, address: Address, method: str, args: tuple = ()) -> Any:
        """One-off RPC outside any protocol (inspection surfaces)."""

        def proto():
            (result,) = yield Batch([Call(address, method, args)])
            return result

        return self.run(proto())

    # -- execution -------------------------------------------------------

    def run(self, proto: Protocol[Any]) -> Any:
        """Execute a protocol from any thread (the sync facade).

        The calling thread's open trace (if any) rides along explicitly —
        the loop thread cannot read the caller's thread-locals — and the
        caller's span-coverage watermark is advanced over the whole
        driver-run window afterwards, so a thread-side
        ``trace_operation`` block around this exports cleanly.
        """
        trace = current_trace()
        parent = current_op_span()
        t0 = time.perf_counter_ns()
        value = self.run_async(self.drive(proto, trace=trace, parent=parent))
        if trace is not None:
            advance_op_mark(trace, parent, t0, time.perf_counter_ns())
        return value

    def spawn(self, proto: Protocol[Any]) -> AioProtocolFuture:
        """Run a protocol concurrently on the loop; returns a waitable
        future (thread-parity with ``ThreadedDriver.spawn``: the spawned
        protocol does not inherit the spawning thread's trace)."""
        return AioProtocolFuture(self, proto)

    async def drive(
        self,
        proto: Protocol[Any],
        *,
        trace: Any = None,
        parent: int | None = None,
    ) -> Any:
        """Execute a protocol as a coroutine on the driver's loop.

        The awaitable core every surface funnels into: ``run``/``spawn``
        pass the sync caller's trace context explicitly; async-native
        callers leave it None and the task-context trace installed by
        :func:`trace_async_operation` applies.
        """
        if trace is None:
            ctx = _task_trace.get()
            if ctx is not None:
                trace, parent = ctx
        try:
            op = next(proto)
            while True:
                if isinstance(op, Compute):
                    op = proto.send(None)
                    continue
                if isinstance(op, Mark):
                    op = proto.send(time.monotonic())
                    continue
                if not isinstance(op, Batch):
                    raise TypeError(
                        f"protocol yielded {op!r}, expected Batch or Compute"
                    )
                try:
                    results = await self._execute_batch(op, trace, parent)
                except ReproError as exc:
                    op = proto.throw(exc)
                    continue
                op = proto.send(results)
        except StopIteration as stop:
            return stop.value

    async def _execute_batch(
        self, batch: Batch, trace: Any, parent: int | None
    ) -> list[Any]:
        # Same framing as every other real driver: one wire RPC (= one
        # frame / queue submission) per destination, destinations resolved
        # before anything is submitted.
        calls = batch.calls
        if not calls:
            return []
        if asyncio.get_running_loop() is not self.loop:
            raise RuntimeError(
                "protocol coroutines must run on the driver's event loop "
                "(enter it via AioDriver.run_async or AioDriver.spawn)"
            )
        groups = plan_wire_groups(calls)
        servers = self._servers
        remotes = self._remotes
        resolved: list[tuple[AioPeer | None, _ServerThread | None]] = []
        for group in groups:
            server = servers.get(group.dest)
            if server is not None:
                resolved.append((None, server))
                continue
            remote = remotes.get(group.dest)
            if remote is None:
                raise KeyError(f"no actor registered at address {group.dest!r}")
            resolved.append((remote, None))
        results: list[Any] = [None] * len(calls)
        latch = _AioLatch(self.loop, len(groups))
        self._batches += 1
        self._submissions += len(groups)
        span_ids = None
        if trace is not None:
            span_ids = [new_span_id() for _ in groups]
        t_enq = time.perf_counter_ns()
        slots: list[list | None] = [None] * len(groups)
        for k, ((remote, server), group) in enumerate(zip(resolved, groups)):
            wire_trace = trace if span_ids is None else (trace, span_ids[k])
            if remote is not None:
                slot: list = [None]
                slots[k] = slot
                remote.submit(group, slot, latch, 0, wire_trace)
            else:
                server.inbox.put(
                    (group.calls, group.indices, results, latch, 0,
                     wire_trace, t_enq)
                )
        await latch.wait()
        self._wakeups += 1
        t_done = time.perf_counter_ns()
        rtt_ns = t_done - t_enq
        for group in groups:
            hist = self._rtt.get(dest_kind(group.dest))
            if hist is None:
                hist = self._rtt[dest_kind(group.dest)] = LatencyHistogram()
            hist.record(rtt_ns)
        if span_ids is not None:
            # rpc spans with explicit parenting: the loop thread serves
            # many interleaved operations, so the thread-local watermark
            # dance of record_group_spans cannot apply here (the sync
            # facade closes its caller's watermark instead).
            start, end = to_span_ns(t_enq), to_span_ns(t_done)
            for sid, group in zip(span_ids, groups):
                nbytes = sum(call.payload_bytes() for call in group.calls)
                record_rpc_span(
                    trace, sid, parent, format_actor(group.dest),
                    start, end, nbytes,
                )
        for k, slot in enumerate(slots):
            if slot is None:
                continue
            group = groups[k]
            values = RemoteActorDriver._decode_group(group, slot[0])
            for index, value in zip(group.indices, values):
                results[index] = value
        return [deliver(c, r) for c, r in zip(calls, results)]

    # -- lifecycle -------------------------------------------------------

    def _shutdown(self, send_shutdown: bool) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            servers = list(self._servers.values())
            remotes = list(self._remotes.values())

        async def _stop_peers() -> None:
            await asyncio.gather(
                *(p.stop_async(send_shutdown=send_shutdown) for p in remotes),
                return_exceptions=True,
            )

        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(_stop_peers(), self.loop).result(60)
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=10)
        for server in servers:
            server.stop()

    def close(self) -> None:
        """Orderly teardown: every remote actor gets the shutdown control,
        the loop drains and stops, in-parent service threads join."""
        self._shutdown(send_shutdown=True)

    def abort(self) -> None:
        """Hang up without stopping the remote actors (the teardown for a
        failed build against operator-run agents)."""
        self._shutdown(send_shutdown=False)

    def __enter__(self) -> "AioDriver":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
