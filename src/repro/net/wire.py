"""Shared wire machinery for the socket-backed drivers.

The process driver (:mod:`repro.net.process`) and the TCP driver
(:mod:`repro.net.tcp`) speak the same protocol — :mod:`repro.net.codec`
messages carrying ``("rpc", sub_calls)`` requests and control messages —
over different connection kinds (an inherited ``socketpair`` to a child
process vs. a real TCP connection to a node agent). Everything that is
*about the protocol* rather than the connection lives here:

- :class:`RpcChannel` — the caller side of one live connection: pending
  request registry, a dedicated sender thread (submits never block on a
  busy peer's socket), a receiver thread that routes replies by the
  12-byte message header alone (bodies are decoded later, on the caller
  thread that wants the data), and drain-on-death: when the connection
  dies, every in-flight request completes with a
  :class:`~repro.errors.RemoteError` and future submissions fail fast.
- :class:`RemoteActorDriver` — a :class:`~repro.net.threaded.ThreadedDriver`
  whose registry is split between in-parent service threads and remote
  handles; batches execute the exact wire groups planned by
  :func:`~repro.net.sansio.plan_wire_groups`, one message per destination.
- the control vocabulary (``stats``, ``shutdown``) and the reply encoder
  shared by worker processes and node agents.

Invariants this module guarantees (pinned by the process- and
tcp-transport suites):

- **submits never block**: frames leave through an outbound queue drained
  by a dedicated sender thread per channel, so a caller is never stuck on
  a busy peer's socket backpressure;
- **replies route by header, decode on the caller**: the receiver thread
  touches only the 12-byte message header — payload unpickling happens on
  the caller thread that asked for the data, concurrently across callers;
- **drain-as-RemoteError, exactly once**: channel death (EOF, kill, send
  failure, codec corruption) completes every pending request with a
  :class:`~repro.errors.RemoteError`, fails all future submissions fast,
  and fires ``on_down`` exactly once, after the drain — no caller ever
  blocks on a corpse, and no batch latch is ever released twice;
- **a socket another thread may be blocked in ``recv`` on is severed with
  ``shutdown(SHUT_RDWR)`` before ``close()``** (:func:`force_close`) — a
  bare close neither wakes the reader nor sends FIN on Linux.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time
from typing import Any, Callable, Mapping

from repro.errors import RemoteError
from repro.net.codec import (
    MessageDecoder,
    WireCodecError,
    decode_body,
    encode_message,
)
from repro.net.sansio import (
    Actor,
    Address,
    Batch,
    Call,
    WireGroup,
    deliver,
    dispatch_call,
    plan_wire_groups,
)
from repro.net.threaded import ThreadedDriver, _BatchLatch, dest_kind
from repro.obs.spans import new_span_id, record_group_spans
from repro.obs.trace import current_op_span, current_trace

#: socket receive chunk: large enough to drain several page-sized messages
#: per syscall when replies queue up
RECV_CHUNK = 1 << 20

#: requested SO_SNDBUF/SO_RCVBUF: lets a full page batch leave the caller
#: in one non-blocking sendall even while the peer is mid-computation
SOCK_BUF = 1 << 20

#: control message kinds understood by worker/agent service loops.
#: Controls are *not* counted as wire RPCs by either side, so a stats or
#: telemetry scrape never perturbs workload counter assertions.
CTL_STATS = "stats"
CTL_SHUTDOWN = "shutdown"
CTL_TELEMETRY = "telemetry"


def force_close(sock: socket.socket) -> None:
    """Sever a socket that another thread may be blocked in ``recv`` on.

    A bare ``close()`` neither wakes a concurrently blocked ``recv()``
    nor sends FIN while that syscall still references the file — the
    reader (ours *and* the peer's) would sit in recv until kingdom come.
    ``shutdown(SHUT_RDWR)`` does both, immediately.
    """
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass  # never connected, or already shut down
    try:
        sock.close()
    except OSError:
        pass


def tune_socket(sock: socket.socket) -> None:
    """Enlarge kernel buffers; disable Nagle on TCP sockets (RPC replies
    are latency-bound and the codec already writes whole frames)."""
    for opt in (socket.SO_SNDBUF, socket.SO_RCVBUF):
        try:
            sock.setsockopt(socket.SOL_SOCKET, opt, SOCK_BUF)
        except OSError:  # pragma: no cover - platform-capped buffers are fine
            pass
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # not a TCP socket (e.g. an AF_UNIX socketpair)
        pass


def run_calls(actor: Actor, address: Address, payload: list) -> list:
    """Serve one ``("rpc", payload)`` message body against an actor."""
    return [
        dispatch_call(actor, Call(address, method, call_args))
        for method, call_args in payload
    ]


def encode_reply(req_id: int, results: list) -> bytes:
    """Encode a result list, downgrading unpicklable values to errors.

    ``dispatch_call`` already wraps handler exceptions in
    :class:`RemoteError` (whose ``__reduce__`` drops unpicklable
    originals), so this fallback only fires when a *successful* handler
    returns something that cannot cross the wire — a bug worth naming
    precisely instead of killing the connection.
    """
    try:
        return encode_message(req_id, results)
    except WireCodecError:
        safe: list[Any] = []
        for value in results:
            try:
                encode_message(0, value)
                safe.append(value)
            except WireCodecError as exc:
                safe.append(
                    RemoteError(
                        "UnpicklableResult", f"{type(value).__name__}: {exc}"
                    )
                )
        return encode_message(req_id, safe)


class RpcChannel:
    """Caller-side endpoint of one live RPC connection.

    Many caller threads submit concurrently: frames go out through an
    outbound queue drained by a dedicated sender thread (a submit never
    blocks on socket backpressure from a busy peer), and a receiver
    thread routes raw reply bodies (by message header alone — no
    unpickling) to whichever batch latch is waiting. Death (EOF, kill,
    send failure, codec corruption) drains every pending request with a
    ``RemoteError`` and fails all future submissions fast — no caller
    ever blocks on a corpse. ``on_down`` fires exactly once, after the
    drain; it must not block (the TCP peer uses it to kick its
    reconnector, the process driver records a terminal reason).
    """

    def __init__(
        self,
        sock: socket.socket,
        peer: str,
        *,
        error_label: str = "PeerUnavailable",
        on_down: Callable[[str], None] | None = None,
    ) -> None:
        self.peer = peer
        self.sock = sock
        self._error_label = error_label
        self._on_down = on_down
        self._pending_lock = threading.Lock()
        #: req_id -> ("rpc", slot, latch, gen) | ("ctl", box, event);
        #: slot/box receive the *encoded* reply body (or a RemoteError)
        self._pending: dict[int, tuple] = {}
        self._req_ids = itertools.count(1)
        self._down_reason: str | None = None
        self._outbox: queue.SimpleQueue = queue.SimpleQueue()
        self._recv_thread = threading.Thread(
            target=self._recv_loop, name=f"recv-{peer}", daemon=True
        )
        self._recv_thread.start()
        self._send_thread = threading.Thread(
            target=self._send_loop, name=f"send-{peer}", daemon=True
        )
        self._send_thread.start()

    # -- health ----------------------------------------------------------

    @property
    def down_reason(self) -> str | None:
        return self._down_reason

    def mark_down(self, reason: str) -> None:
        with self._pending_lock:
            if self._down_reason is not None:
                return
            self._down_reason = reason
            drained = list(self._pending.values())
            self._pending.clear()
        error = RemoteError(self._error_label, reason)
        for entry in drained:
            self._complete(entry, error)
        if self._on_down is not None:
            self._on_down(reason)

    @staticmethod
    def _complete(entry: tuple, body: Any) -> None:
        """Hand a raw reply body (or a RemoteError) to its waiter."""
        if entry[0] == "rpc":
            _, slot, latch, gen = entry
            slot[0] = body
            latch.group_done(gen)
        else:
            _, box, event = entry
            box[0] = body
            event.set()

    # -- receive ---------------------------------------------------------

    def _recv_loop(self) -> None:
        decoder = MessageDecoder()
        while True:
            try:
                chunk = self.sock.recv(RECV_CHUNK)
            except OSError:
                chunk = b""
            if not chunk:
                # No peer-process poll here: the owner's on_down callback
                # runs on this thread and must stay non-blocking (see the
                # process driver for why polling from here corrupts
                # multiprocessing exit codes).
                self.mark_down(f"peer {self.peer} connection lost")
                return
            try:
                for req_id, body in decoder.feed(chunk):
                    with self._pending_lock:
                        entry = self._pending.pop(req_id, None)
                    if entry is not None:
                        self._complete(entry, body)
            except WireCodecError as exc:
                self.mark_down(f"peer {self.peer} sent a corrupt message: {exc}")
                return

    # -- submit ----------------------------------------------------------

    def submit(
        self,
        group: WireGroup,
        slot: list,
        latch: _BatchLatch,
        gen: int,
        trace: Any = None,
    ) -> None:
        """Send one wire group; the receiver thread completes the latch.

        ``slot`` is the batch's one-element mailbox for this group: it
        receives the raw reply body, which the *caller* decodes after the
        latch releases (see ``RemoteActorDriver._execute_batch``).

        ``trace`` is the driver-minted trace context for this group — a
        ``(trace_id, span_id)`` pair while the caller has a trace open,
        else ``None``.
        """
        payload = [(call.method, call.args) for call in group.calls]
        with self._pending_lock:
            reason = self._down_reason
            if reason is None:
                req_id = next(self._req_ids)
                self._pending[req_id] = ("rpc", slot, latch, gen)
        if reason is not None:
            slot[0] = RemoteError(self._error_label, reason)
            latch.group_done(gen)
            return
        # Trace propagation: the envelope grows an optional third field
        # only while the calling thread has a trace open — with none, the
        # frame is bit-identical to the historical 2-tuple form.
        envelope = ("rpc", payload) if trace is None else ("rpc", payload, trace)
        try:
            frame = encode_message(req_id, envelope)
        except WireCodecError as exc:
            # the *request* is unpicklable: that call is broken, not the
            # peer. Complete the group only if the entry is still ours —
            # a concurrent mark_down may have drained (and completed) it,
            # and a second group_done would release the batch latch early.
            with self._pending_lock:
                entry = self._pending.pop(req_id, None)
            if entry is not None:
                slot[0] = RemoteError.wrap(exc)
                latch.group_done(gen)
            return
        self._outbox.put(frame)

    def control(self, kind: str, timeout: float = 10.0) -> Any:
        """Round-trip one control message; raises on a down connection."""
        box: list[Any] = [None]
        event = threading.Event()
        with self._pending_lock:
            reason = self._down_reason
            if reason is None:
                req_id = next(self._req_ids)
                self._pending[req_id] = ("ctl", box, event)
        if reason is not None:
            raise RemoteError(self._error_label, reason)
        self._outbox.put(encode_message(req_id, (kind, ())))
        if not event.wait(timeout):
            with self._pending_lock:
                self._pending.pop(req_id, None)
            raise TimeoutError(
                f"peer {self.peer} did not answer {kind!r} in {timeout}s"
            )
        if isinstance(box[0], RemoteError):
            raise box[0]
        value = decode_body(box[0])
        if isinstance(value, RemoteError):
            raise value
        return value

    def _send_loop(self) -> None:
        while True:
            frame = self._outbox.get()
            if frame is None:
                return
            try:
                self.sock.sendall(frame)
            except (OSError, ValueError) as exc:
                self.mark_down(f"send to peer {self.peer} failed: {exc!r}")
                return

    # -- lifecycle -------------------------------------------------------

    def close(self, reason: str = "channel closed") -> None:
        """Drain, stop both service threads, and close the socket."""
        self.mark_down(reason)
        self._outbox.put(None)
        force_close(self.sock)
        self._recv_thread.join(timeout=5)
        self._send_thread.join(timeout=5)


class RemoteActorDriver(ThreadedDriver):
    """Drives protocols against a mix of remote and in-parent actors.

    Extends :class:`ThreadedDriver`: ``register`` places an actor on an
    in-parent service thread (exactly the threaded driver's semantics),
    while subclasses register *remote handles* — objects exposing
    ``submit(group, slot, latch, gen, trace)``, ``control(kind)`` and
    ``stop()``
    — for actors living in worker processes or on other hosts. The
    protocol loop, batch latch, ``spawn``/futures and transport counters
    are shared, so ``transport_stats`` reads identically across every
    real driver.
    """

    def __init__(self, registry: Mapping[Address, Actor] | None = None) -> None:
        super().__init__(registry)
        self._remotes: dict[Address, Any] = {}

    # -- registration ----------------------------------------------------

    def register(self, address: Address, actor: Actor) -> None:
        if address in self._remotes:
            raise ValueError(f"address {address!r} already registered (remote)")
        super().register(address, actor)

    def _register_remote(self, address: Address, handle: Any) -> None:
        """Install a connected remote handle (caller holds no lock)."""
        with self._lock:
            if self._closed:
                handle.stop()
                raise RuntimeError("driver is closed")
            if address in self._servers or address in self._remotes:
                handle.stop()
                raise ValueError(f"address {address!r} already registered")
            self._remotes[address] = handle

    def addresses(self) -> list[Address]:
        with self._lock:
            return list(self._servers) + list(self._remotes)

    def remote_addresses(self) -> list[Address]:
        with self._lock:
            return list(self._remotes)

    # -- introspection ---------------------------------------------------

    def server_stats(self) -> dict[Address, tuple[int, int]]:
        """Per-actor ``(wire_rpcs, sub_calls)``, queried over the wire for
        remote actors (raises ``RemoteError`` for a dead peer)."""
        with self._lock:
            servers = dict(self._servers)
            remotes = dict(self._remotes)
        stats = {a: (s.served_rpcs, s.served_calls) for a, s in servers.items()}
        for address, handle in remotes.items():
            reply = handle.control(CTL_STATS)
            stats[address] = (reply["wire_rpcs"], reply["sub_calls"])
        return stats

    def telemetry(self, address: Address) -> dict[str, Any]:
        """One actor's telemetry report (wire counters + service-time
        snapshot), queried over the wire as a *control* for remote actors
        — controls are not counted as wire RPCs, so scraping is invisible
        to the workload counters."""
        with self._lock:
            remote = self._remotes.get(address)
        if remote is None:
            return super().telemetry(address)
        return remote.control(CTL_TELEMETRY)

    def call(self, address: Address, method: str, args: tuple = ()) -> Any:
        """One-off RPC outside any protocol (inspection surfaces)."""

        def proto():
            (result,) = yield Batch([Call(address, method, args)])
            return result

        return self.run(proto())

    # -- execution -------------------------------------------------------

    def _execute_batch(self, batch: Batch) -> list[Any]:
        calls = batch.calls
        if not calls:
            return []
        groups = plan_wire_groups(calls)
        servers = self._servers
        remotes = self._remotes
        resolved: list[tuple[Any, Any]] = []
        for group in groups:
            server = servers.get(group.dest)
            if server is not None:
                resolved.append((None, server))
                continue
            remote = remotes.get(group.dest)
            if remote is None:
                raise KeyError(f"no actor registered at address {group.dest!r}")
            resolved.append((remote, None))
        results: list[Any] = [None] * len(calls)
        latch = self._latch()
        gen = latch.begin(len(groups))
        trace = current_trace()
        # With a trace open each wire group gets a span id that rides the
        # envelope (serving-side spans parent to it); untraced batches
        # stay bit-identical on the wire.
        span_ids = None
        parent = None
        if trace is not None:
            parent = current_op_span()
            span_ids = [new_span_id() for _ in groups]
        t_enq = time.perf_counter_ns()
        slots: list[list | None] = [None] * len(groups)
        for k, ((remote, server), group) in enumerate(zip(resolved, groups)):
            wire_trace = trace if span_ids is None else (trace, span_ids[k])
            if remote is not None:
                slot: list = [None]
                slots[k] = slot
                remote.submit(group, slot, latch, gen, wire_trace)
            else:
                server.inbox.put(
                    (group.calls, group.indices, results, latch, gen,
                     wire_trace, t_enq)
                )
        latch.wait()
        t_done = time.perf_counter_ns()
        rtt_ns = t_done - t_enq
        for group in groups:
            latch.record_rtt(dest_kind(group.dest), rtt_ns)
        if span_ids is not None:
            record_group_spans(trace, parent, span_ids, groups, t_enq, t_done)
        # Decode remote replies on *this* thread: the receiver threads only
        # routed raw bodies, so payload unpickling happens in the caller
        # that asked for the data, concurrent across caller threads.
        for k, slot in enumerate(slots):
            if slot is None:
                continue
            group = groups[k]
            body = slot[0]
            values = self._decode_group(group, body)
            for index, value in zip(group.indices, values):
                results[index] = value
        return [deliver(c, r) for c, r in zip(calls, results)]

    @staticmethod
    def _decode_group(group: WireGroup, body: Any) -> list:
        n = len(group.calls)
        if isinstance(body, RemoteError):
            return [body] * n
        try:
            values = decode_body(body)
        except WireCodecError as exc:
            return [RemoteError.wrap(exc)] * n
        if not isinstance(values, list) or len(values) != n:
            return [
                RemoteError(
                    "WireProtocolError",
                    f"peer {group.dest!r} answered {n} calls with "
                    f"{type(values).__name__}",
                )
            ] * n
        return values

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            remotes = list(self._remotes.values())
        for handle in remotes:
            handle.stop()
        super().close()
