"""Simulated RPC driver: runs sans-io protocols on the cluster model.

Each protocol instance becomes a process on its client's
:class:`~repro.sim.network.SimNode`. Batches are executed with full cost
accounting:

1. client CPU: connection management per destination, per-wire-RPC fixed
   overhead, per-sub-call marshalling;
2. client NIC tx serialization of the aggregated request, link latency,
   server NIC rx;
3. server CPU: per-wire-RPC overhead plus per-sub-call service time — this
   lane is shared by all clients of that server, which is exactly where
   contention appears in the concurrent-clients experiment;
4. handler execution (state mutation) at the simulated completion instant,
   so e.g. version-number assignment is serialized in simulated time;
5. the response travels back the same way; the client pays a per-reply
   processing cost (tree-node decoding dominates READs, per the paper).

``Compute`` operations charge the client CPU lane using the calibrated
per-unit costs in :class:`~repro.sim.network.ClusterSpec`.

Hot-path notes: this driver executes every RPC of every benchmark figure,
so the batch path is written for constant-factor speed — single-call and
single-destination batches skip group bookkeeping entirely, multi-group
fan-out rides the engine's counter-based :class:`~repro.sim.engine.Join`
(no per-group ``Process``/``AllOf``), per-method costs come from the
memoized :meth:`~repro.sim.network.ClusterSpec.method_costs` table, and
adjacent same-instant lane waits are fused with deferred-start
submissions (``RateLane.push`` + ``not_before``) so a wire RPC costs four
scheduled events end to end, with unchanged lane occupancy.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ReproError
from repro.net.message import estimate_size
from repro.net.sansio import (
    Actor,
    Address,
    Batch,
    Call,
    Compute,
    Mark,
    Protocol,
    deliver,
    dispatch_call,
    plan_wire_groups,
)
from repro.obs.spans import SIM_DOMAIN, make_span, new_span_id
from repro.obs.trace import current_op_span, current_trace
from repro.sim.engine import Event, Simulator
from repro.sim.network import Network, SimNode


class SimRpcExecutor:
    """Registry of simulated actors plus the protocol runner."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.spec = network.spec
        self._actors: dict[Address, tuple[Actor, SimNode]] = {}
        self.wire_rpcs = 0
        self.sub_calls = 0
        #: modeled-timeline spans (``repro.spans/1`` dicts, sim-time ns,
        #: domain :data:`~repro.obs.spans.SIM_DOMAIN`) recorded while a
        #: trace is open; appended at group completion, so tracing adds
        #: **no scheduled events** and never perturbs simulated series
        self.spans: list[dict[str, Any]] = []

    def register(self, address: Address, actor: Actor, node: SimNode) -> None:
        if address in self._actors:
            raise ValueError(f"address {address!r} already registered")
        self._actors[address] = (actor, node)

    def actor(self, address: Address) -> Actor:
        return self._actors[address][0]

    def node_of(self, address: Address) -> SimNode:
        return self._actors[address][1]

    def addresses(self) -> list[Address]:
        return list(self._actors)

    def telemetry(self, address: Address) -> dict[str, Any]:
        """One actor's telemetry report, same shape as the real drivers'.

        The recorded service times are *host* nanoseconds around the
        handler body — useful for spotting hot handlers, unrelated to
        simulated time (which :mod:`repro.sim.trace` accounts). The wire
        counters are executor-wide here, not per-actor, so they are
        reported as ``None``.
        """
        from repro.obs.telemetry import telemetry_of

        actor, _node = self._actors[address]
        return {
            "wire_rpcs": None,
            "sub_calls": None,
            "telemetry": telemetry_of(actor).snapshot(),
        }

    # -- protocol execution ----------------------------------------------

    def run_protocol(
        self, proto: Protocol[Any], client_node: SimNode
    ) -> Generator[Event, Any, Any]:
        """Generator suitable for ``sim.process(...)``: drives ``proto``."""
        try:
            op = next(proto)
            while True:
                cls = op.__class__
                if cls is Batch:
                    try:
                        results = yield from self._execute_batch(client_node, op)
                    except ReproError as exc:
                        op = proto.throw(exc)
                        continue
                    op = proto.send(results)
                    continue
                if cls is Compute:
                    cost = self.spec.compute_cost(op.key, op.units)
                    if cost > 0:
                        yield client_node.cpu.submit(cost)
                    op = proto.send(None)
                    continue
                if cls is Mark:
                    op = proto.send(self.sim.now)
                    continue
                raise TypeError(
                    f"protocol yielded {op!r}, expected Batch or Compute"
                )
        except StopIteration as stop:
            return stop.value

    def _execute_batch(
        self, client_node: SimNode, batch: Batch
    ) -> Generator[Event, Any, list[Any]]:
        # One wire RPC per destination (the aggregating framework of paper
        # §V.A); with aggregation disabled every sub-call pays full freight.
        # Framing is shared with the threaded driver: both execute exactly
        # the groups `plan_wire_groups` plans.
        calls = batch.calls
        if not calls:
            return []
        groups = plan_wire_groups(calls, self.spec.aggregate)

        # Fast path: a single wire RPC — no fan-out machinery, and the
        # identity index map means results come back already in call order.
        if len(groups) == 1:
            dest, group_calls, _ = groups[0]
            values = yield from self._execute_group(client_node, dest, group_calls)
            return [deliver(c, v) for c, v in zip(calls, values)]

        # Counter-based fan-out: one Join event drives every group
        # generator in place of a Process + AllOf per destination.
        results: list[Any] = [None] * len(calls)
        gens = [
            self._execute_group(client_node, dest, group_calls)
            for dest, group_calls, _ in groups
        ]
        all_values = yield self.sim.join(gens)
        for group, values in zip(groups, all_values):
            for index, value in zip(group.indices, values):
                results[index] = value
        return [deliver(c, r) for c, r in zip(calls, results)]

    def _execute_group(
        self, client_node: SimNode, dest: Address, calls: list[Call]
    ) -> Generator[Event, Any, list[Any]]:
        """One aggregated wire RPC to a single destination."""
        entry = self._actors.get(dest)
        if entry is None:
            raise KeyError(f"no actor registered at address {dest!r}")
        actor, server_node = entry
        sim = self.sim
        spec = self.spec
        network = self.network
        method_costs = spec.method_costs
        n = len(calls)
        self.wire_rpcs += 1
        self.sub_calls += n
        trace = current_trace()
        t_req = sim.now if trace is not None else 0.0

        # One pass over the sub-calls resolves request payload bytes and the
        # per-method cost rows (service CPU, reply CPU, async latency).
        # Aggregated groups are overwhelmingly single-method, so the cost
        # row is only re-fetched when the method string changes.
        req_payload = 0
        service_sum = 0.0
        reply_sum = 0.0
        async_sum = 0.0
        prev_method = None
        costs = (0.0, 0.0, 0.0)
        for c in calls:
            rb = c.request_bytes
            req_payload += rb if rb is not None else estimate_size(c.args)
            method = c.method
            if method is not prev_method:
                costs = method_costs(method)
                prev_method = method
            service_sum += costs[0]
            reply_sum += costs[1]
            async_sum += costs[2]

        # The cost pipeline below is the same lane sequence as ever —
        # client CPU -> client tx -> link -> server rx -> server CPU [->
        # async] -> handlers -> server CPU -> server tx -> link -> client
        # rx -> client CPU — but adjacent waits are fused: work whose
        # completion only gates the *next* lane is pushed without an
        # event (``push``) and the next lane starts ``not_before`` it
        # finishes. Four scheduled events per wire RPC instead of ten.
        # Sequential (uncontended) timing is arithmetically identical to
        # the unfused sequence. Under contention the queueing discipline
        # shifts slightly: a fused job reserves its lane slot when its
        # predecessor is *submitted* (arrival order) rather than when the
        # predecessor *finishes*, so two jobs racing for one lane can
        # swap places relative to the step-by-step model. This is still
        # deterministic and work-conserving — the benchmark series were
        # re-baselined with this discipline.
        send_cpu = spec.conn_mgmt + spec.rpc_overhead + spec.per_call_marshal * n
        service = spec.rpc_overhead + service_sum + spec.server_byte_cpu * req_payload
        req_bytes = spec.wire_header + spec.per_call_header * n + req_payload
        network.messages_sent += 1
        network.bytes_sent += req_bytes
        loopback = client_node is server_node
        # 1+2. client send CPU, tx serialization and link latency: one wait
        cpu_done = client_node.cpu.push(send_cpu)
        if loopback:
            yield sim.timeout(cpu_done - sim.now + 1e-6)
        else:
            yield client_node.tx.submit(
                req_bytes, extra_delay=spec.latency, not_before=cpu_done
            )
            # 3. arrival: rx serialization, then server-side service (fixed
            # per sub-call + payload-proportional) plus the asynchronous
            # backend completion latency (3b, a pure delay off the CPU lane)
        rx_done = 0.0 if loopback else server_node.rx.push(req_bytes)
        yield server_node.cpu.submit(
            service, extra_delay=async_sum, not_before=rx_done
        )
        t_served = sim.now
        # 4. handler execution at the simulated completion instant
        values = [dispatch_call(actor, c) for c in calls]
        # 5. response: server reply-handling CPU, tx, link, client rx
        resp_payload = 0
        for v in values:
            resp_payload += estimate_size(v)
        resp_bytes = spec.wire_header + spec.per_call_header * n + resp_payload
        network.messages_sent += 1
        network.bytes_sent += resp_bytes
        resp_cpu_done = server_node.cpu.push(spec.server_byte_cpu * resp_payload)
        if loopback:
            yield sim.timeout(resp_cpu_done - sim.now + 1e-6)
            crx_done = 0.0
        else:
            yield server_node.tx.submit(
                resp_bytes, extra_delay=spec.latency, not_before=resp_cpu_done
            )
            crx_done = client_node.rx.push(resp_bytes)
        # 6. client-side receive path CPU (reply decoding / processing)
        yield client_node.cpu.submit(
            spec.rpc_overhead + reply_sum, not_before=crx_done
        )
        if trace is not None:
            self._record_spans(
                trace, dest, calls, req_bytes, t_req, rx_done, t_served,
                sim.now,
            )
        return values

    def _record_spans(
        self,
        trace: int,
        dest: Address,
        calls: list[Call],
        req_bytes: int,
        t_req: float,
        rx_done: float,
        t_served: float,
        t_done: float,
    ) -> None:
        """Append the group's modeled rpc + server spans (sim-time ns).

        Same schema as the real drivers' spans, so a modeled timeline
        diffs directly against a measured one. The server window runs
        from request arrival (``rx_done``; request enqueue for loopback)
        to service completion — queue wait on the server CPU lane is
        inside the window, reported as ``queue_ns`` zero because the
        lane model doesn't expose per-job start instants.
        """
        from repro.net.address import format_actor

        parent = current_op_span()
        span_id = new_span_id()
        label = format_actor(dest)
        method = calls[0].method
        if any(c.method != method for c in calls):
            method = "mixed"
        t_arrive = rx_done if rx_done > t_req else t_req
        self.spans.append(
            make_span(
                trace, span_id, parent, "rpc", label, "client",
                int(t_req * 1e9), int(t_done * 1e9),
                domain=SIM_DOMAIN, nbytes=req_bytes,
            )
        )
        self.spans.append(
            make_span(
                trace, new_span_id(), span_id, "server", method, label,
                int(t_arrive * 1e9), int(t_served * 1e9),
                domain=SIM_DOMAIN, nbytes=req_bytes,
            )
        )
