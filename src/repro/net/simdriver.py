"""Simulated RPC driver: runs sans-io protocols on the cluster model.

Each protocol instance becomes a process on its client's
:class:`~repro.sim.network.SimNode`. Batches are executed with full cost
accounting:

1. client CPU: connection management per destination, per-wire-RPC fixed
   overhead, per-sub-call marshalling;
2. client NIC tx serialization of the aggregated request, link latency,
   server NIC rx;
3. server CPU: per-wire-RPC overhead plus per-sub-call service time — this
   lane is shared by all clients of that server, which is exactly where
   contention appears in the concurrent-clients experiment;
4. handler execution (state mutation) at the simulated completion instant,
   so e.g. version-number assignment is serialized in simulated time;
5. the response travels back the same way; the client pays a per-reply
   processing cost (tree-node decoding dominates READs, per the paper).

``Compute`` operations charge the client CPU lane using the calibrated
per-unit costs in :class:`~repro.sim.network.ClusterSpec`.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ReproError
from repro.net.message import estimate_size
from repro.net.sansio import (
    Actor,
    Address,
    Batch,
    Call,
    Compute,
    Mark,
    Protocol,
    deliver,
    dispatch_call,
)
from repro.sim.engine import Event, Simulator
from repro.sim.network import Network, SimNode


class SimRpcExecutor:
    """Registry of simulated actors plus the protocol runner."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.spec = network.spec
        self._actors: dict[Address, tuple[Actor, SimNode]] = {}
        self.wire_rpcs = 0
        self.sub_calls = 0

    def register(self, address: Address, actor: Actor, node: SimNode) -> None:
        if address in self._actors:
            raise ValueError(f"address {address!r} already registered")
        self._actors[address] = (actor, node)

    def actor(self, address: Address) -> Actor:
        return self._actors[address][0]

    def node_of(self, address: Address) -> SimNode:
        return self._actors[address][1]

    # -- protocol execution ----------------------------------------------

    def run_protocol(
        self, proto: Protocol[Any], client_node: SimNode
    ) -> Generator[Event, Any, Any]:
        """Generator suitable for ``sim.process(...)``: drives ``proto``."""
        try:
            op = next(proto)
            while True:
                if isinstance(op, Compute):
                    cost = self.spec.compute_cost(op.key, op.units)
                    if cost > 0:
                        yield client_node.cpu.submit(cost)
                    op = proto.send(None)
                    continue
                if isinstance(op, Mark):
                    op = proto.send(self.sim.now)
                    continue
                if not isinstance(op, Batch):
                    raise TypeError(
                        f"protocol yielded {op!r}, expected Batch or Compute"
                    )
                try:
                    results = yield from self._execute_batch(client_node, op)
                except ReproError as exc:
                    op = proto.throw(exc)
                    continue
                op = proto.send(results)
        except StopIteration as stop:
            return stop.value

    def _execute_batch(
        self, client_node: SimNode, batch: Batch
    ) -> Generator[Event, Any, list[Any]]:
        # One wire RPC per destination (the aggregating framework of paper
        # §V.A); with aggregation disabled every sub-call pays full freight.
        groups: dict[Any, tuple[list[Call], list[int]]] = {}
        for index, call in enumerate(batch.calls):
            group_key = call.dest if self.spec.aggregate else (call.dest, index)
            calls, indices = groups.setdefault(group_key, ([], []))
            calls.append(call)
            indices.append(index)
        results: list[Any] = [None] * len(batch.calls)
        if len(groups) == 1:
            ((_, (calls, indices)),) = groups.items()
            values = yield from self._execute_group(
                client_node, calls[0].dest, calls
            )
            for index, value in zip(indices, values):
                results[index] = value
        else:
            procs = []
            order: list[list[int]] = []
            for calls, indices in groups.values():
                procs.append(
                    self.sim.process(
                        self._execute_group(client_node, calls[0].dest, calls),
                        name=f"rpc->{calls[0].dest}",
                    )
                )
                order.append(indices)
            all_values = yield self.sim.all_of(procs)
            for indices, values in zip(order, all_values):
                for index, value in zip(indices, values):
                    results[index] = value
        return [deliver(c, r) for c, r in zip(batch.calls, results)]

    def _execute_group(
        self, client_node: SimNode, dest: Address, calls: list[Call]
    ) -> Generator[Event, Any, list[Any]]:
        """One aggregated wire RPC to a single destination."""
        entry = self._actors.get(dest)
        if entry is None:
            raise KeyError(f"no actor registered at address {dest!r}")
        actor, server_node = entry
        spec = self.spec
        n = len(calls)
        self.wire_rpcs += 1
        self.sub_calls += n

        # 1. client-side send path CPU (per-byte costs live in the NIC rates)
        req_payload = sum(c.payload_bytes() for c in calls)
        yield client_node.cpu.submit(
            spec.conn_mgmt + spec.rpc_overhead + spec.per_call_marshal * n
        )
        # 2. request over the wire
        req_bytes = spec.wire_header + spec.per_call_header * n + req_payload
        yield from self.network.transfer(client_node, server_node, req_bytes)
        # 3. server-side service (fixed per sub-call + payload-proportional)
        service = (
            spec.rpc_overhead
            + sum(spec.service_time(c.method) for c in calls)
            + spec.server_byte_cpu * req_payload
        )
        yield server_node.cpu.submit(service)
        # 3b. asynchronous backend completion latency (does not occupy the
        # CPU lane; models e.g. DHT put acknowledgement)
        async_delay = sum(spec.async_latency(c.method) for c in calls)
        if async_delay > 0:
            yield self.sim.timeout(async_delay)
        # 4. handler execution at the simulated completion instant
        values = [dispatch_call(actor, c) for c in calls]
        # 5. response over the wire
        resp_payload = sum(estimate_size(v) for v in values)
        yield server_node.cpu.submit(spec.server_byte_cpu * resp_payload)
        resp_bytes = spec.wire_header + spec.per_call_header * n + resp_payload
        yield from self.network.transfer(server_node, client_node, resp_bytes)
        # 6. client-side receive path CPU (reply decoding / processing)
        yield client_node.cpu.submit(
            spec.rpc_overhead + sum(spec.reply_cpu(c.method) for c in calls)
        )
        return values
