"""Messaging substrate: sans-io protocols and their execution drivers.

The blob protocols (READ, WRITE, ALLOC, GC) are written **once** as plain
generators that yield :class:`~repro.net.sansio.Batch` /
:class:`~repro.net.sansio.Compute` operations and receive results — no I/O,
no threads, no clocks inside the protocol logic (the "sans-io" style). Three
drivers execute them:

- :class:`~repro.net.inproc.InprocDriver` — direct dispatch, for functional
  tests, examples and the application pipeline;
- :class:`~repro.net.threaded.ThreadedDriver` — one service thread per actor
  with queue transports: real concurrency, used to validate lock-freedom;
- :class:`~repro.net.process.ProcessDriver` — one OS process per provider
  actor, length-prefixed pickle frames (:mod:`repro.net.codec`) over
  pipes: real parallelism, no shared GIL, meaningful throughput;
- :class:`~repro.net.tcp.TcpDriver` — actors behind ``host:port`` node
  agents (:mod:`repro.net.node`), same frames over real TCP connections
  with reconnect-safe fail-over: the multi-host cluster deployment;
- :class:`~repro.net.aio.AioDriver` — the same TCP agents driven from a
  single asyncio event loop multiplexing every peer socket: thousands of
  concurrent client coroutines instead of one thread per client;
- :class:`~repro.net.simdriver.SimRpcExecutor` — runs protocols as processes
  on the discrete-event cluster with full cost accounting, used by every
  benchmark.

The drivers share aggregation semantics: sub-calls within one batch that
target the same destination travel in a single wire RPC (paper §V.A).
"""

from repro.net.sansio import Batch, Call, Compute, Protocol, run_inproc
from repro.net.message import estimate_size
from repro.net.address import ClusterMap, Endpoint, format_actor, parse_actor
from repro.net.inproc import InprocDriver
from repro.net.threaded import ThreadedDriver
from repro.net.process import ProcessDriver
from repro.net.node import NodeAgent
from repro.net.tcp import TcpDriver
from repro.net.aio import AioDriver
from repro.net.simdriver import SimRpcExecutor

__all__ = [
    "Batch",
    "Call",
    "Compute",
    "Protocol",
    "run_inproc",
    "estimate_size",
    "ClusterMap",
    "Endpoint",
    "format_actor",
    "parse_actor",
    "InprocDriver",
    "ThreadedDriver",
    "ProcessDriver",
    "NodeAgent",
    "TcpDriver",
    "AioDriver",
    "SimRpcExecutor",
]
