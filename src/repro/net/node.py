"""Node agent: hosts actors behind a TCP listener.

This is the server half of the cluster subsystem — the piece that runs on
every storage host. One agent process listens on one ``host:port``
endpoint and hosts any number of actors (the paper's layout colocates one
data and one metadata provider per node). Clients are
:class:`~repro.net.tcp.TcpDriver` peers; the wire protocol is exactly the
worker-process protocol (:mod:`repro.net.codec` messages carrying
``("rpc", sub_calls)`` and ``stats``/``shutdown`` controls), prefixed by
one handshake:

1. the connecting peer sends ``("hello", actor_name)`` naming the actor
   this connection will serve (``"data/3"`` — see
   :mod:`repro.net.address`);
2. the agent answers ``("welcome", actor_name)`` and binds the connection
   to that actor, or ``("reject", reason)`` and closes it.

Actor confinement is preserved exactly as in the threaded and process
drivers: every actor is served by a single dedicated service thread with
an inbox queue, so actor code needs no locking no matter how many
connections (a live driver plus a reconnecting one, say) feed it.
Connection pump threads only decode and enqueue; replies go out on the
connection the request arrived on.

An agent shuts down when every actor it hosts has received the
``shutdown`` control — the driver's orderly close — at which point
:meth:`NodeAgent.serve_forever` returns and the CLI wrapper
(:mod:`repro.tools.node`) exits 0.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Mapping

from repro.errors import ConfigError, RemoteError
from repro.net.address import Endpoint, format_actor, parse_actor
from repro.net.codec import (
    MessageDecoder,
    WireCodecError,
    decode_body,
    encode_message,
)
from repro.net.sansio import Actor, Address
from repro.net.wire import (
    CTL_SHUTDOWN,
    CTL_STATS,
    RECV_CHUNK,
    encode_reply,
    force_close,
    run_calls,
    tune_socket,
)

#: the reserved request id both handshake messages travel under
HANDSHAKE_REQ_ID = 0


def build_actor(name: str, *, checksum: bool = False) -> tuple[Address, Actor]:
    """Construct the actor a CLI ``--actor`` spec names.

    ``data/N`` and ``meta/N`` build providers (the actors a cluster
    distributes); ``vm`` builds a version manager for deployments that
    want the serialization point on its own host. ``pm`` is deliberately
    not constructible here: the provider manager needs deployment-wide
    registration of every data provider, which only the deployment
    builder knows.
    """
    address = parse_actor(name)
    if isinstance(address, tuple):
        kind, index = address
        if kind == "data":
            from repro.providers.data_provider import DataProvider

            return address, DataProvider(index, checksum=checksum)
        if kind == "meta":
            from repro.metadata.provider import MetadataProvider

            return address, MetadataProvider(index)
    elif address == "vm":
        from repro.version.manager import VersionManager

        return address, VersionManager()
    raise ConfigError(
        f"cannot build actor {name!r}: expected data/N, meta/N or vm"
    )


class _ActorService:
    """One hosted actor: its service thread, inbox and wire counters."""

    def __init__(self, agent: "NodeAgent", address: Address, actor: Actor) -> None:
        self.agent = agent
        self.address = address
        self.name = format_actor(address)
        self.actor = actor
        self.inbox: queue.SimpleQueue = queue.SimpleQueue()
        self.served_rpcs = 0
        self.served_calls = 0
        self.stopped = False
        self.thread = threading.Thread(
            target=self._loop, name=f"agent-{self.name}", daemon=True
        )
        self.thread.start()

    def _loop(self) -> None:
        while True:
            item = self.inbox.get()
            if item is None:
                return  # force-stop from NodeAgent.close()
            conn, req_id, kind, payload = item
            if kind == "rpc":
                self.served_rpcs += 1
                self.served_calls += len(payload)
                reply = encode_reply(
                    req_id, run_calls(self.actor, self.address, payload)
                )
            elif kind == CTL_STATS:
                reply = encode_message(
                    req_id,
                    {
                        "wire_rpcs": self.served_rpcs,
                        "sub_calls": self.served_calls,
                    },
                )
            elif kind == CTL_SHUTDOWN:
                self._reply(conn, encode_message(req_id, True))
                self.stopped = True
                self.agent._actor_done(self.name)
                return
            else:
                reply = encode_message(
                    req_id,
                    RemoteError("UnknownControl", f"bad message kind {kind!r}"),
                )
            self._reply(conn, reply)

    @staticmethod
    def _reply(conn: socket.socket, frame: bytes) -> None:
        # A dead connection is the *peer's* problem: its channel drains
        # in-flight calls as RemoteError the moment it sees EOF, so the
        # reply it will never read is simply dropped here.
        try:
            conn.sendall(frame)
        except (OSError, ValueError):
            pass


class NodeAgent:
    """Serves a set of actors on one TCP endpoint.

    Library object (the CLI in :mod:`repro.tools.node` wraps it): tests
    run agents in-thread via :meth:`start`, deployments run them as OS
    processes. ``port=0`` binds an ephemeral port; read :attr:`endpoint`
    for the real one.
    """

    def __init__(
        self,
        actors: Mapping[Address | str, Actor],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._services: dict[str, _ActorService] = {}
        for address, actor in actors.items():
            if isinstance(address, str) and "/" in address:
                address = parse_actor(address)
            name = format_actor(address)
            if name in self._services:
                raise ConfigError(f"actor {name!r} hosted twice")
            self._services[name] = _ActorService(self, address, actor)
        if not self._services:
            raise ConfigError("a node agent needs at least one actor")
        self._listener = socket.create_server((host, port))
        bound = self._listener.getsockname()
        self.endpoint = Endpoint(host, bound[1])
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._active = len(self._services)
        self._stopped = threading.Event()
        self._serving = threading.Event()  # serve_forever entered
        self._serve_done = threading.Event()  # serve_forever returned
        self._serve_thread: threading.Thread | None = None

    @property
    def actor_names(self) -> list[str]:
        return list(self._services)

    # -- lifecycle -------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until every hosted actor is shut down.

        The listener polls with a short timeout rather than blocking
        indefinitely: closing a listening socket from another thread
        does *not* wake a blocked ``accept()`` on Linux, so a pure
        blocking loop would hang the agent's clean exit forever.
        """
        self._serving.set()
        try:
            self._listener.settimeout(0.25)
            while not self._stopped.is_set():
                try:
                    conn, _peer = self._listener.accept()
                except TimeoutError:
                    continue
                except OSError:
                    break  # listener closed: agent is done
                conn.setblocking(True)
                threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name=f"conn-{self.endpoint}",
                    daemon=True,
                ).start()
            try:
                self._listener.close()
            except OSError:
                pass
            self._close_conns()
        finally:
            self._serve_done.set()

    def start(self) -> threading.Thread:
        """Serve on a background thread (in-process agents for tests)."""
        thread = threading.Thread(
            target=self.serve_forever, name=f"agent-{self.endpoint}", daemon=True
        )
        self._serve_thread = thread
        thread.start()
        return thread

    def wait_stopped(self, timeout: float | None = None) -> bool:
        return self._stopped.wait(timeout)

    def _actor_done(self, name: str) -> None:
        """An actor finished its shutdown control; last one out closes."""
        with self._lock:
            self._active -= 1
            done = self._active <= 0
        if done:
            self._stopped.set()
            try:
                self._listener.close()
            except OSError:
                pass

    def close(self) -> None:
        """Force-stop: close the listener and every connection.

        This is the *unclean* path (tests use it to simulate an agent
        lost to the network); the clean path is per-actor ``shutdown``
        controls arriving over the wire.

        Blocks until the serve loop has actually exited: closing the
        listener's fd does not release the bound port while the loop's
        in-flight ``accept`` poll still references the socket, and a
        caller restarting an agent on the same port (the reconnect
        scenario) must not race that release window.
        """
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for service in self._services.values():
            service.inbox.put(None)
        self._close_conns()
        if self._serving.is_set():
            self._serve_done.wait(2.0)

    def drop_connections(self) -> None:
        """Sever every live connection but keep serving (network blip)."""
        self._close_conns()

    def _close_conns(self) -> None:
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            force_close(conn)

    # -- connection service ----------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        tune_socket(conn)
        with self._lock:
            self._conns.add(conn)
        try:
            handshook = self._handshake(conn)
            if handshook is None:
                return
            # keep the handshake's decoder: a client that pipelines RPCs
            # behind its hello may have left complete messages (drained
            # with an empty feed below) or a partial frame (must stay
            # buffered) — a fresh decoder would desynchronize the stream
            service, decoder = handshook
            chunk = b""
            while True:
                for req_id, body in decoder.feed(chunk):
                    kind, payload = decode_body(body)
                    service.inbox.put((conn, req_id, kind, payload))
                try:
                    chunk = conn.recv(RECV_CHUNK)
                except OSError:
                    return
                if not chunk:
                    return
        except WireCodecError:
            return  # corrupt stream: drop the connection, keep the agent
        finally:
            with self._lock:
                self._conns.discard(conn)
            force_close(conn)

    def _handshake(
        self, conn: socket.socket
    ) -> tuple[_ActorService, MessageDecoder] | None:
        """Read ``("hello", name)``; answer welcome/reject.

        Returns the bound service *and* the decoder holding whatever
        bytes arrived behind the hello, so the caller's service loop
        resumes the stream exactly where the handshake left it."""
        decoder = MessageDecoder()
        first: tuple[int, bytes] | None = None
        while first is None:
            try:
                chunk = conn.recv(RECV_CHUNK)
            except OSError:
                return None
            if not chunk:
                return None
            for msg in decoder.feed(chunk):
                first = msg
                break
        req_id, body = first
        hello = decode_body(body)
        if (
            not isinstance(hello, tuple)
            or len(hello) != 2
            or hello[0] != "hello"
        ):
            self._reject(conn, req_id, f"expected hello handshake, got {hello!r}")
            return None
        name = hello[1]
        service = self._services.get(name)
        if service is None:
            self._reject(
                conn,
                req_id,
                f"agent at {self.endpoint} hosts {self.actor_names}, "
                f"not {name!r}",
            )
            return None
        if service.stopped:
            self._reject(conn, req_id, f"actor {name!r} is shut down")
            return None
        try:
            conn.sendall(encode_message(req_id, ("welcome", name)))
        except OSError:
            return None
        return service, decoder

    @staticmethod
    def _reject(conn: socket.socket, req_id: int, reason: str) -> None:
        try:
            conn.sendall(encode_message(req_id, ("reject", reason)))
        except OSError:
            pass

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict[str, tuple[int, int]]:
        """Per-actor ``(wire_rpcs, sub_calls)`` (in-process inspection)."""
        return {
            name: (s.served_rpcs, s.served_calls)
            for name, s in self._services.items()
        }
