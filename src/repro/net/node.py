"""Node agent: hosts actors behind a TCP listener.

This is the server half of the cluster subsystem — the piece that runs on
every cluster host. One agent process listens on one ``host:port``
endpoint and hosts any number of actors: the paper's layout colocates one
data and one metadata provider per storage node and gives the version
manager (``vm``) and provider manager (``pm``) dedicated machines — all
four actor kinds are hosted by this same agent. Clients are
:class:`~repro.net.tcp.TcpDriver` peers; the wire protocol is exactly the
worker-process protocol (:mod:`repro.net.codec` messages carrying
``("rpc", sub_calls)`` and ``stats``/``shutdown`` controls), prefixed by
one handshake.

Invariants this module guarantees (pinned by ``tests/test_tcp_transport.py``
and ``tests/test_tcp_control_plane.py``):

- **hello/welcome binding**: the first message on every fresh connection
  is ``("hello", actor_name)`` naming the one actor the connection will
  serve (``"data/3"`` — grammar in :mod:`repro.net.address`); the agent
  answers ``("welcome", actor_name)`` and binds the connection to that
  actor, or ``("reject", reason)`` and closes it. A client may pipeline
  RPCs behind its hello without waiting for the welcome: the service
  loop resumes the handshake's decoder, so buffered complete messages
  and even a partial frame straddling the handshake boundary are
  honored, never dropped.
- **actor confinement**: every hosted actor is served by a single
  dedicated service thread with an inbox queue — actor code needs no
  locking no matter how many connections (a live driver plus a
  reconnecting one, say) feed it. Connection pump threads only decode
  and enqueue; replies go out on the connection the request arrived on.
- **provider registration at agent start**: given the pm's endpoint, an
  agent hosting data providers registers each of them with the provider
  manager the moment it starts serving (the paper's "each provider
  registers on entering the system", §III.A), retrying with backoff
  until the pm is reachable — so a restarted data agent re-enters the
  allocation pool without operator action.
- **clean exit**: an agent shuts down when every actor it hosts has
  received the ``shutdown`` control — the driver's orderly close — at
  which point :meth:`NodeAgent.serve_forever` returns and the CLI
  wrapper (:mod:`repro.tools.node`) exits 0.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Iterable, Mapping

from repro.errors import ConfigError, RemoteError, ReproError
from repro.net.address import Endpoint, format_actor, parse_actor, parse_endpoint
from repro.net.codec import (
    MessageDecoder,
    WireCodecError,
    decode_body,
    encode_message,
)
from repro.net.sansio import Actor, Address
from repro.net.wire import (
    CTL_SHUTDOWN,
    CTL_STATS,
    CTL_TELEMETRY,
    RECV_CHUNK,
    encode_reply,
    force_close,
    run_calls,
    tune_socket,
)
from repro.obs.telemetry import telemetry_of
from repro.obs.trace import clear_server_context, set_server_context

#: the reserved request id both handshake messages travel under
HANDSHAKE_REQ_ID = 0

#: agent-start pm registration retry delays (the pm agent may come up last)
REGISTER_BACKOFF_INITIAL = 0.1
REGISTER_BACKOFF_MAX = 2.0


class HandshakeError(ReproError):
    """The agent answered the hello with a reject (or garbage)."""


def connect_and_handshake(
    endpoint: Endpoint, actor_name: str, timeout: float
) -> socket.socket:
    """Dial an agent and bind the fresh connection to one actor.

    The client side of the hello/welcome exchange (the server side lives
    in :meth:`NodeAgent._handshake`). Returns a connected, tuned,
    blocking socket; raises ``OSError`` on dial failure and
    :class:`HandshakeError` on a reject.
    """
    sock = socket.create_connection((endpoint.host, endpoint.port), timeout=timeout)
    try:
        tune_socket(sock)
        sock.sendall(encode_message(HANDSHAKE_REQ_ID, ("hello", actor_name)))
        decoder = MessageDecoder()
        reply = None
        while reply is None:
            chunk = sock.recv(4096)
            if not chunk:
                raise HandshakeError(
                    f"agent at {endpoint} closed the connection mid-handshake"
                )
            for _req_id, body in decoder.feed(chunk):
                reply = decode_body(body)
                break
        if (
            not isinstance(reply, tuple)
            or len(reply) != 2
            or reply[0] not in ("welcome", "reject")
        ):
            raise HandshakeError(f"bad handshake reply from {endpoint}: {reply!r}")
        if reply[0] == "reject":
            raise HandshakeError(f"agent at {endpoint} rejected {actor_name!r}: {reply[1]}")
        sock.settimeout(None)
        return sock
    except BaseException:
        sock.close()
        raise


def register_providers(
    pm_endpoint: Endpoint | str,
    provider_ids: Iterable[int],
    *,
    timeout: float = 5.0,
    on_socket=None,
) -> list[int]:
    """One registration round-trip: dial the pm agent, register providers.

    Sends a single ``("rpc", ...)`` frame carrying one ``pm.register``
    sub-call per provider id and waits for the reply, so registration is
    atomic from the pm's point of view (one wire RPC per registering
    agent). Raises ``OSError`` if the pm agent is unreachable,
    :class:`HandshakeError` on a reject, and
    :class:`~repro.errors.RemoteError` if the pm answered any register
    with an error. Returns the pm's provider counts, one per id.
    """
    ids = list(provider_ids)
    endpoint = parse_endpoint(pm_endpoint)
    sock = connect_and_handshake(endpoint, "pm", timeout)
    if on_socket is not None:
        # let the caller sever this socket from another thread (an agent
        # being closed must be able to cancel an in-flight registration)
        on_socket(sock)
    try:
        payload = [("pm.register", (i,)) for i in ids]
        sock.sendall(encode_message(1, ("rpc", payload)))
        sock.settimeout(timeout)
        decoder = MessageDecoder()
        while True:
            chunk = sock.recv(RECV_CHUNK)
            if not chunk:
                raise HandshakeError(
                    f"pm agent at {endpoint} closed before acking registration"
                )
            for _req_id, body in decoder.feed(chunk):
                results = decode_body(body)
                for value in results:
                    if isinstance(value, RemoteError):
                        raise value
                return results
    finally:
        force_close(sock)


def build_actor(
    name: str,
    *,
    checksum: bool = False,
    strategy: str = "round_robin",
    strategy_kwargs: Mapping | None = None,
    replication: int = 1,
    state_dir: str | None = None,
    fsync: str = "never",
    snapshot_every: int | None = 1024,
) -> tuple[Address, Actor]:
    """Construct the actor a CLI ``--actor`` spec names.

    ``data/N`` and ``meta/N`` build providers (the actors a cluster
    distributes); ``vm`` builds a version manager and ``pm`` a provider
    manager for deployments that put the control plane on its own hosts
    (the paper's layout). A pm built here starts with an *empty*
    provider registry: data agents register their providers with it at
    start (``pm_endpoint``), and :func:`repro.deploy.tcp.build_tcp`
    additionally replays registration over the wire in connected mode,
    so the pm always learns the whole cluster before the first write.

    ``state_dir`` makes a vm or pm **durable**: its state lives in a
    :class:`~repro.core.journal.Journal` under ``<state_dir>/<actor>``
    and a rebuilt actor pointed at the same directory resumes its
    incarnation (replaying the log and, for the vm, rolling back
    unpublished assignments). Storage actors ignore it — their
    durability tier is :class:`~repro.core.persistence.DiskSpill`.
    """
    address = parse_actor(name)

    def journal_for(actor_name: str):
        if state_dir is None:
            return None
        from pathlib import Path

        from repro.core.journal import Journal

        return Journal(
            Path(state_dir) / actor_name,
            fsync=fsync,
            snapshot_every=snapshot_every,
        )

    if isinstance(address, tuple):
        kind, index = address
        if kind == "data":
            from repro.providers.data_provider import DataProvider

            return address, DataProvider(index, checksum=checksum)
        if kind == "meta":
            from repro.metadata.provider import MetadataProvider

            return address, MetadataProvider(index)
    elif address == "vm":
        from repro.version.manager import VersionManager

        return address, VersionManager(journal=journal_for("vm"))
    elif address == "pm":
        from repro.providers.manager import ProviderManager
        from repro.providers.strategies import make_strategy

        return address, ProviderManager(
            make_strategy(strategy, **dict(strategy_kwargs or {})),
            replication=replication,
            journal=journal_for("pm"),
        )
    raise ConfigError(
        f"cannot build actor {name!r}: expected data/N, meta/N, vm or pm"
    )


class _ActorService:
    """One hosted actor: its service thread, inbox and wire counters."""

    def __init__(self, agent: "NodeAgent", address: Address, actor: Actor) -> None:
        self.agent = agent
        self.address = address
        self.name = format_actor(address)
        self.actor = actor
        self.inbox: queue.SimpleQueue = queue.SimpleQueue()
        self.served_rpcs = 0
        self.served_calls = 0
        self.stopped = False
        self.thread = threading.Thread(
            target=self._loop, name=f"agent-{self.name}", daemon=True
        )
        self.thread.start()

    def _loop(self) -> None:
        while True:
            item = self.inbox.get()
            if item is None:
                return  # force-stop from NodeAgent.close()
            conn, req_id, kind, payload, trace, t_enq, nbytes = item
            if kind == "rpc":
                self.served_rpcs += 1
                self.served_calls += len(payload)
                set_server_context(
                    trace, time.perf_counter_ns() - t_enq, nbytes
                )
                try:
                    reply = encode_reply(
                        req_id, run_calls(self.actor, self.address, payload)
                    )
                finally:
                    clear_server_context()
            elif kind == CTL_STATS:
                reply = encode_message(
                    req_id,
                    {
                        "wire_rpcs": self.served_rpcs,
                        "sub_calls": self.served_calls,
                    },
                )
            elif kind == CTL_TELEMETRY:
                # A scrape, not workload: answered in-line on the service
                # thread (a coherent snapshot needs no locks — the
                # accumulator's writer is this very thread) and deliberately
                # NOT counted in served_rpcs/served_calls.
                reply = encode_message(
                    req_id,
                    {
                        "wire_rpcs": self.served_rpcs,
                        "sub_calls": self.served_calls,
                        "telemetry": telemetry_of(self.actor).snapshot(),
                    },
                )
            elif kind == CTL_SHUTDOWN:
                # Clean shutdown path: give durable actors their compaction
                # point BEFORE acking (NodeAgent.close() deliberately does
                # not — it models agent *loss*, and recovery must work from
                # the raw log alone).
                close = getattr(self.actor, "close", None)
                if callable(close):
                    close()
                self._reply(conn, encode_message(req_id, True))
                self.stopped = True
                self.agent._actor_done(self.name)
                return
            else:
                reply = encode_message(
                    req_id,
                    RemoteError("UnknownControl", f"bad message kind {kind!r}"),
                )
            self._reply(conn, reply)

    @staticmethod
    def _reply(conn: socket.socket, frame: bytes) -> None:
        # A dead connection is the *peer's* problem: its channel drains
        # in-flight calls as RemoteError the moment it sees EOF, so the
        # reply it will never read is simply dropped here.
        try:
            conn.sendall(frame)
        except (OSError, ValueError):
            pass


class NodeAgent:
    """Serves a set of actors on one TCP endpoint.

    Library object (the CLI in :mod:`repro.tools.node` wraps it): tests
    run agents in-thread via :meth:`start`, deployments run them as OS
    processes. ``port=0`` binds an ephemeral port; read :attr:`endpoint`
    for the real one.

    ``pm_endpoint`` names the provider manager's agent: when given and
    the agent hosts data providers, a background thread registers each
    of them with the pm (one wire RPC, retried with backoff until the pm
    is reachable or this agent stops) — the deployment-wide registration
    that lets a cluster run its pm on its own host, and lets a
    *restarted* data agent rejoin the allocation pool by itself.
    :attr:`pm_registered` is set once the pm has acked.
    """

    def __init__(
        self,
        actors: Mapping[Address | str, Actor],
        host: str = "127.0.0.1",
        port: int = 0,
        pm_endpoint: Endpoint | str | None = None,
    ) -> None:
        self._services: dict[str, _ActorService] = {}
        for address, actor in actors.items():
            if isinstance(address, str) and "/" in address:
                address = parse_actor(address)
            name = format_actor(address)
            if name in self._services:
                raise ConfigError(f"actor {name!r} hosted twice")
            self._services[name] = _ActorService(self, address, actor)
        if not self._services:
            raise ConfigError("a node agent needs at least one actor")
        # validate before binding: a bad endpoint must not leak a listener
        self._pm_endpoint = (
            parse_endpoint(pm_endpoint) if pm_endpoint is not None else None
        )
        self._listener = socket.create_server((host, port))
        bound = self._listener.getsockname()
        self.endpoint = Endpoint(host, bound[1])
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._active = len(self._services)
        self._stopped = threading.Event()
        self._serving = threading.Event()  # serve_forever entered
        self._serve_done = threading.Event()  # serve_forever returned
        self._serve_thread: threading.Thread | None = None
        #: set once the pm has acked this agent's provider registration
        self.pm_registered = threading.Event()
        self._register_sock: socket.socket | None = None
        self._register_thread: threading.Thread | None = None
        hosted_data = [
            s.address[1]
            for s in self._services.values()
            if isinstance(s.address, tuple) and s.address[0] == "data"
        ]
        if self._pm_endpoint is not None and hosted_data:
            self._register_thread = threading.Thread(
                target=self._register_loop,
                args=(sorted(hosted_data),),
                name=f"register-{self.endpoint}",
                daemon=True,
            )
            self._register_thread.start()

    def _register_loop(self, provider_ids: list[int]) -> None:
        """Register hosted data providers with the pm, until acked.

        Runs from construction (an agent is dialable the moment its
        listener is bound, before ``serve_forever``), so a launcher that
        reads the READY line never waits on the pm. Backoff covers the
        start-order race — the pm agent may come up after this one.
        ``close()`` cancels an in-flight attempt by severing the tracked
        socket, so a stopped agent never registers itself afterwards."""

        def track(sock: socket.socket) -> None:
            with self._lock:
                self._register_sock = sock
            if self._stopped.is_set():  # close() raced the dial: cancel
                force_close(sock)

        backoff = REGISTER_BACKOFF_INITIAL
        while not self._stopped.is_set():
            try:
                register_providers(
                    self._pm_endpoint, provider_ids, on_socket=track
                )
            except (OSError, ReproError):
                self._stopped.wait(backoff)
                backoff = min(backoff * 2, REGISTER_BACKOFF_MAX)
                continue
            finally:
                with self._lock:
                    self._register_sock = None
            if not self._stopped.is_set():
                self.pm_registered.set()
            return

    @property
    def actor_names(self) -> list[str]:
        return list(self._services)

    # -- lifecycle -------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until every hosted actor is shut down.

        The listener polls with a short timeout rather than blocking
        indefinitely: closing a listening socket from another thread
        does *not* wake a blocked ``accept()`` on Linux, so a pure
        blocking loop would hang the agent's clean exit forever.
        """
        self._serving.set()
        try:
            self._listener.settimeout(0.25)
            while not self._stopped.is_set():
                try:
                    conn, _peer = self._listener.accept()
                except TimeoutError:
                    continue
                except OSError:
                    break  # listener closed: agent is done
                conn.setblocking(True)
                threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name=f"conn-{self.endpoint}",
                    daemon=True,
                ).start()
            try:
                self._listener.close()
            except OSError:
                pass
            self._close_conns()
        finally:
            self._serve_done.set()

    def start(self) -> threading.Thread:
        """Serve on a background thread (in-process agents for tests)."""
        thread = threading.Thread(
            target=self.serve_forever, name=f"agent-{self.endpoint}", daemon=True
        )
        self._serve_thread = thread
        thread.start()
        return thread

    def wait_stopped(self, timeout: float | None = None) -> bool:
        return self._stopped.wait(timeout)

    def _actor_done(self, name: str) -> None:
        """An actor finished its shutdown control; last one out closes."""
        with self._lock:
            self._active -= 1
            done = self._active <= 0
        if done:
            self._stopped.set()
            try:
                self._listener.close()
            except OSError:
                pass

    def close(self) -> None:
        """Force-stop: close the listener and every connection.

        This is the *unclean* path (tests use it to simulate an agent
        lost to the network); the clean path is per-actor ``shutdown``
        controls arriving over the wire.

        Blocks until the serve loop has actually exited: closing the
        listener's fd does not release the bound port while the loop's
        in-flight ``accept`` poll still references the socket, and a
        caller restarting an agent on the same port (the reconnect
        scenario) must not race that release window.
        """
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for service in self._services.values():
            service.inbox.put(None)
        self._close_conns()
        # cancel an in-flight pm registration: a stopped agent must never
        # (re-)enter the allocation pool after the operator took it down
        with self._lock:
            register_sock = self._register_sock
        if register_sock is not None:
            force_close(register_sock)
        if self._register_thread is not None:
            self._register_thread.join(timeout=2.0)
        if self._serving.is_set():
            self._serve_done.wait(2.0)

    def drop_connections(self) -> None:
        """Sever every live connection but keep serving (network blip)."""
        self._close_conns()

    def _close_conns(self) -> None:
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            force_close(conn)

    # -- connection service ----------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        tune_socket(conn)
        with self._lock:
            self._conns.add(conn)
        try:
            handshook = self._handshake(conn)
            if handshook is None:
                return
            # keep the handshake's decoder: a client that pipelines RPCs
            # behind its hello may have left complete messages (drained
            # with an empty feed below) or a partial frame (must stay
            # buffered) — a fresh decoder would desynchronize the stream
            service, decoder = handshook
            chunk = b""
            while True:
                for req_id, body in decoder.feed(chunk):
                    decoded = decode_body(body)
                    # arity-tolerant: ("rpc", payload) grew an optional
                    # trace-id third field; controls stay 2-tuples
                    kind, payload = decoded[0], decoded[1]
                    trace = decoded[2] if len(decoded) > 2 else None
                    service.inbox.put(
                        (conn, req_id, kind, payload, trace,
                         time.perf_counter_ns(), len(body))
                    )
                try:
                    chunk = conn.recv(RECV_CHUNK)
                except OSError:
                    return
                if not chunk:
                    return
        except WireCodecError:
            return  # corrupt stream: drop the connection, keep the agent
        finally:
            with self._lock:
                self._conns.discard(conn)
            force_close(conn)

    def _handshake(
        self, conn: socket.socket
    ) -> tuple[_ActorService, MessageDecoder] | None:
        """Read ``("hello", name)``; answer welcome/reject.

        Returns the bound service *and* the decoder holding whatever
        bytes arrived behind the hello, so the caller's service loop
        resumes the stream exactly where the handshake left it."""
        decoder = MessageDecoder()
        first: tuple[int, bytes] | None = None
        while first is None:
            try:
                chunk = conn.recv(RECV_CHUNK)
            except OSError:
                return None
            if not chunk:
                return None
            for msg in decoder.feed(chunk):
                first = msg
                break
        req_id, body = first
        hello = decode_body(body)
        if (
            not isinstance(hello, tuple)
            or len(hello) != 2
            or hello[0] != "hello"
        ):
            self._reject(conn, req_id, f"expected hello handshake, got {hello!r}")
            return None
        name = hello[1]
        service = self._services.get(name)
        if service is None:
            self._reject(
                conn,
                req_id,
                f"agent at {self.endpoint} hosts {self.actor_names}, "
                f"not {name!r}",
            )
            return None
        if service.stopped:
            self._reject(conn, req_id, f"actor {name!r} is shut down")
            return None
        try:
            conn.sendall(encode_message(req_id, ("welcome", name)))
        except OSError:
            return None
        return service, decoder

    @staticmethod
    def _reject(conn: socket.socket, req_id: int, reason: str) -> None:
        try:
            conn.sendall(encode_message(req_id, ("reject", reason)))
        except OSError:
            pass

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict[str, tuple[int, int]]:
        """Per-actor ``(wire_rpcs, sub_calls)`` (in-process inspection)."""
        return {
            name: (s.served_rpcs, s.served_calls)
            for name, s in self._services.items()
        }

    def telemetry(self) -> dict[str, dict]:
        """Per-actor telemetry reports, same shape as the ``telemetry``
        control answers over the wire (in-process inspection)."""
        return {
            name: {
                "wire_rpcs": s.served_rpcs,
                "sub_calls": s.served_calls,
                "telemetry": telemetry_of(s.actor).snapshot(),
            }
            for name, s in self._services.items()
        }
