"""TCP driver: actors on other hosts, reached through node agents.

The fifth and final driver — the one that turns the reproduction from
"one machine, many processes" into a cluster architecture. It extends
:class:`~repro.net.threaded.ThreadedDriver` exactly the way the process
driver does (same protocol loop, batch latch, ``plan_wire_groups``
framing, transport counters — all inherited through
:class:`~repro.net.wire.RemoteActorDriver`), but a remote actor lives
behind a ``host:port`` endpoint served by a node agent
(:mod:`repro.net.node`) instead of behind an inherited socketpair. The
same driver therefore runs loopback CI clusters and real multi-host
deployments: only the endpoints in the :class:`~repro.net.address.ClusterMap`
change.

Each registered remote actor gets a :class:`TcpPeer`:

- a dedicated connector thread dials the endpoint, performs the
  ``("hello", actor_name)`` handshake, and installs a live
  :class:`~repro.net.wire.RpcChannel` (sender thread per peer, replies
  routed by the 12-byte header, bodies decoded on the caller thread);
- when the connection dies — agent killed, network partition, corrupt
  stream — every in-flight call drains as
  :class:`~repro.errors.RemoteError` and future calls **fail fast**
  while the peer is down, so replica fail-over proceeds immediately
  instead of blocking behind a dial timeout;
- meanwhile the connector retries with exponential backoff (capped), so
  a *restarted* agent is picked up automatically: reconnect-safe
  fail-over, not fail-once-and-forget.

Invariants this module guarantees (failure-mode parity with the process
driver is pinned by ``tests/test_tcp_transport.py``, mirroring
``test_process_transport.py``; bit-level conformance with every other
driver — including the fully-remote control-plane configuration — by
``tests/test_driver_conformance.py``):

- **drain-as-RemoteError**: a dead connection never strands a caller —
  in-flight calls complete with :class:`~repro.errors.RemoteError` and
  future calls fail fast while the peer is down, so replica fail-over
  proceeds immediately instead of blocking behind a dial timeout;
- **reconnect with backoff**: each peer's connector retries its dial on
  an exponential schedule from ``BACKOFF_INITIAL`` capped at
  ``BACKOFF_MAX``, so a restarted agent on the same endpoint resumes
  service with no driver restart and no re-registration;
- **any actor kind is dialable**: ``vm`` and ``pm`` are remote actors
  exactly like ``data/N`` and ``meta/N`` — the driver treats every
  address uniformly, which is what lets a deployment run with *zero*
  actors in the client parent.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from repro.errors import RemoteError, ReproError
from repro.net.address import (
    ClusterMap,
    Endpoint,
    format_actor,
    parse_endpoint,
)
from repro.net.node import (  # re-exported: the public dial-an-agent surface
    HANDSHAKE_REQ_ID,
    HandshakeError,
    connect_and_handshake,
)
from repro.net.sansio import Actor, Address, WireGroup
from repro.net.wire import (
    CTL_SHUTDOWN,
    RemoteActorDriver,
    RpcChannel,
)
from repro.net.threaded import _BatchLatch

__all__ = [
    "BACKOFF_INITIAL",
    "BACKOFF_MAX",
    "HANDSHAKE_REQ_ID",
    "HandshakeError",
    "TcpDriver",
    "TcpPeer",
    "connect_and_handshake",
]

#: first dial retry delay; doubles per failure up to BACKOFF_MAX
BACKOFF_INITIAL = 0.05
BACKOFF_MAX = 2.0


class TcpPeer:
    """One remote actor: a live channel when connected, a fast-failing
    stub plus a backoff reconnector when not."""

    def __init__(
        self,
        address: Address,
        endpoint: Endpoint,
        *,
        connect_timeout: float = 5.0,
        backoff_initial: float = BACKOFF_INITIAL,
        backoff_max: float = BACKOFF_MAX,
    ) -> None:
        self.address = address
        self.actor_name = format_actor(address)
        self.endpoint = parse_endpoint(endpoint)
        self._connect_timeout = connect_timeout
        self._backoff_initial = backoff_initial
        self._backoff_max = backoff_max
        self._lock = threading.Lock()
        self._channel: RpcChannel | None = None
        self._down_reason = f"peer {self.actor_name}@{self.endpoint} never connected"
        self._closed = False
        self._wake = threading.Event()
        self._connected = threading.Event()
        self._thread = threading.Thread(
            target=self._connector,
            name=f"dial-{self.actor_name}",
            daemon=True,
        )
        self._thread.start()

    # -- health ----------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._connected.is_set()

    @property
    def down_reason(self) -> str | None:
        """Why the peer is unreachable right now (None when connected)."""
        with self._lock:
            if self._channel is not None:
                return None
            return self._down_reason

    def wait_connected(self, timeout: float | None = None) -> bool:
        return self._connected.wait(timeout)

    # -- connector -------------------------------------------------------

    def _connector(self) -> None:
        """Dial → handshake → install channel; on death, back off and redial.

        The connector is the only thread that ever creates channels, and a
        live channel's ``on_down`` is the only thing that wakes it out of
        the connected wait — so at most one channel exists at a time and a
        down notification always refers to the current one.
        """
        backoff = self._backoff_initial
        while True:
            with self._lock:
                if self._closed:
                    return
                channel = self._channel
            if channel is not None:
                self._wake.wait()
                self._wake.clear()
                continue
            try:
                sock = connect_and_handshake(
                    self.endpoint, self.actor_name, self._connect_timeout
                )
            except (OSError, ReproError) as exc:
                with self._lock:
                    self._down_reason = (
                        f"peer {self.actor_name}@{self.endpoint} unreachable: {exc}"
                    )
                self._wake.wait(backoff)
                self._wake.clear()
                backoff = min(backoff * 2, self._backoff_max)
                continue
            channel = RpcChannel(
                sock,
                f"{self.actor_name}@{self.endpoint}",
                error_label="PeerUnavailable",
                on_down=self._channel_down,
            )
            discard = False
            with self._lock:
                if self._closed or channel.down_reason is not None:
                    # closed meanwhile, or dead before it was ever
                    # installed: never expose a corpse as "connected"
                    # (mark_down stamps down_reason before on_down runs,
                    # so a pre-install death is always visible here)
                    discard = True
                else:
                    self._channel = channel
                    # set under the same lock _channel_down clears it
                    # under: a death racing the install can never leave
                    # a down peer reported as connected
                    self._connected.set()
            if discard:
                channel.close("connector discarded the channel")
                continue
            backoff = self._backoff_initial

    def _channel_down(self, reason: str) -> None:
        with self._lock:
            self._channel = None
            self._down_reason = reason
            self._connected.clear()
        self._wake.set()

    # -- RPC surface (the remote-handle contract) ------------------------

    def submit(
        self,
        group: WireGroup,
        slot: list,
        latch: _BatchLatch,
        gen: int,
        trace: Any = None,
    ) -> None:
        with self._lock:
            channel = self._channel
            reason = self._down_reason
        if channel is None:
            # fail fast while down: fail-over must not wait out a redial
            slot[0] = RemoteError("PeerUnavailable", reason)
            latch.group_done(gen)
            return
        channel.submit(group, slot, latch, gen, trace)

    def control(self, kind: str, timeout: float = 10.0) -> Any:
        with self._lock:
            channel = self._channel
            reason = self._down_reason
        if channel is None:
            raise RemoteError("PeerUnavailable", reason)
        return channel.control(kind, timeout=timeout)

    # -- lifecycle -------------------------------------------------------

    def stop(self, timeout: float = 10.0) -> None:
        """Orderly shutdown: tell the remote actor to stop, then hang up."""
        self._shutdown(send_shutdown=True, timeout=timeout)

    def abort(self) -> None:
        """Hang up *without* stopping the remote actor.

        The teardown for a failed build against operator-run agents: the
        builder must release its connections, but sending the shutdown
        control would stop a cluster the operator still wants running.
        """
        self._shutdown(send_shutdown=False, timeout=0.0)

    def _shutdown(self, send_shutdown: bool, timeout: float) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            channel = self._channel
            self._channel = None
        self._wake.set()
        if channel is not None:
            if send_shutdown:
                try:
                    channel.control(CTL_SHUTDOWN, timeout=timeout)
                except (RemoteError, TimeoutError):
                    pass  # peer already dead or wedged; just hang up
            channel.close(
                "peer stopped by driver close"
                if send_shutdown
                else "peer aborted (driver hang-up)"
            )
        self._connected.clear()
        self._thread.join(timeout=5)

    def drop(self) -> None:
        """Sever the current connection without closing the peer (failure
        injection: the connector will redial with backoff)."""
        with self._lock:
            channel = self._channel
        if channel is not None:
            channel.close("connection dropped (failure injection)")


class TcpDriver(RemoteActorDriver):
    """Drives protocols against a mix of TCP-remote and in-parent actors.

    ``register`` places an actor on an in-parent service thread (the
    threaded driver's semantics — deployments keep the version manager
    and provider manager there); ``register_remote`` binds an address to
    a ``host:port`` endpoint served by a node agent. Everything else —
    protocol loop, wire-group framing, one frame per destination per
    batch, caller-side decode, transport counters — is shared with the
    threaded and process drivers, which is what makes the five-driver
    conformance suite's wire-RPC-count equality possible.
    """

    def __init__(
        self,
        registry: Mapping[Address, Actor] | None = None,
        *,
        connect_timeout: float = 5.0,
    ) -> None:
        super().__init__(registry)
        self._connect_timeout = connect_timeout

    # -- registration ----------------------------------------------------

    def register_remote(
        self, address: Address, endpoint: Endpoint | str
    ) -> TcpPeer:
        """Bind ``address`` to a node-agent endpoint; dialing starts
        immediately on a background thread (use :meth:`wait_connected`
        to block until the cluster is reachable)."""
        peer = TcpPeer(
            address, parse_endpoint(endpoint), connect_timeout=self._connect_timeout
        )
        self._register_remote(address, peer)
        return peer

    def register_map(self, cluster_map: ClusterMap) -> None:
        """Register every actor of a cluster map."""
        for address, endpoint in cluster_map.items():
            self.register_remote(address, endpoint)

    def peer(self, address: Address) -> TcpPeer:
        with self._lock:
            return self._remotes[address]

    # -- health ----------------------------------------------------------

    def wait_connected(self, timeout: float = 10.0) -> None:
        """Block until every registered peer holds a live connection;
        raises ``TimeoutError`` naming the unreachable peers."""
        import time

        deadline = time.monotonic() + timeout
        with self._lock:
            peers = list(self._remotes.values())
        laggards = []
        for peer in peers:
            remaining = deadline - time.monotonic()
            if not peer.wait_connected(max(0.0, remaining)):
                laggards.append(
                    f"{peer.actor_name}@{peer.endpoint} ({peer.down_reason})"
                )
        if laggards:
            raise TimeoutError(
                f"peers not connected within {timeout}s: " + "; ".join(laggards)
            )

    def peer_status(self) -> dict[Address, str]:
        """``address -> "connected" | down reason`` for every peer."""
        with self._lock:
            peers = dict(self._remotes)
        return {
            a: ("connected" if p.connected else str(p.down_reason))
            for a, p in peers.items()
        }

    # -- lifecycle -------------------------------------------------------

    def abort(self) -> None:
        """Close without stopping the remote actors.

        ``close()`` is the orderly teardown — every hosted actor gets the
        ``shutdown`` control and agents exit. ``abort()`` only hangs up:
        the teardown for a *failed build* against operator-run agents,
        which must leave the operator's cluster serving.
        """
        with self._lock:
            peers = list(self._remotes.values())
        for peer in peers:
            peer.abort()
        # aborted peers make their stop() a no-op, so the inherited close
        # only stops in-parent service threads and marks the driver closed
        self.close()
