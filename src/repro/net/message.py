"""Wire-size estimation for RPC payloads.

The simulator needs byte counts to account NIC serialization time. Rather
than actually serializing objects (wasted host CPU), every payload type
declares its wire footprint here. Estimates are deliberately simple and
deterministic: a page travels as its payload size plus a small descriptor;
a metadata tree node is a fixed-size record; control values are small.

``estimate_size`` sits on the simulated-RPC hot path (every sub-call's
request and reply are sized), so dispatch is memoized in a plain
type-keyed dict in front of the ``singledispatch`` registry: one dict hit
per call instead of the MRO walk + weakref cache of ``functools``.
"""

from __future__ import annotations

from functools import singledispatch
from typing import Any, Callable

#: Serialized footprint of one segment-tree node: key (blob id hash, version,
#: offset, size), child version references or page descriptor, framing.
NODE_WIRE_BYTES = 112

#: Footprint of a page key / descriptor accompanying page payloads.
PAGE_KEY_BYTES = 48

#: Default footprint for small control values (ints, None, short strings).
SMALL_VALUE_BYTES = 16


@singledispatch
def _estimate_size_impl(obj: Any) -> int:
    return SMALL_VALUE_BYTES


_dispatch_cache: dict[type, Callable[[Any], int]] = {}


def estimate_size(obj: Any) -> int:
    """Best-effort wire footprint of ``obj`` in bytes.

    Types owned by this library register explicit sizes (see
    ``repro.providers.page`` and ``repro.metadata.node``); everything else
    falls back to structural rules below.
    """
    cls = obj.__class__
    fn = _dispatch_cache.get(cls)
    if fn is None:
        fn = _estimate_size_impl.dispatch(cls)
        _dispatch_cache[cls] = fn
    return fn(obj)


def _register(arg: Any, func: Callable[[Any], int] | None = None) -> Any:
    """``estimate_size.register``: same contract as ``singledispatch``."""
    result = (
        _estimate_size_impl.register(arg)
        if func is None
        else _estimate_size_impl.register(arg, func)
    )
    # A new registration can shadow cached fallbacks for subclasses.
    _dispatch_cache.clear()
    return result


estimate_size.register = _register  # type: ignore[attr-defined]
estimate_size.registry = _estimate_size_impl.registry  # type: ignore[attr-defined]
estimate_size.dispatch = _estimate_size_impl.dispatch  # type: ignore[attr-defined]


@estimate_size.register
def _(obj: bytes) -> int:
    return len(obj)


@estimate_size.register
def _(obj: bytearray) -> int:
    return len(obj)


@estimate_size.register
def _(obj: memoryview) -> int:
    return obj.nbytes


@estimate_size.register
def _(obj: str) -> int:
    return max(SMALL_VALUE_BYTES, len(obj))


@estimate_size.register
def _(obj: type(None)) -> int:  # noqa: ANN001
    return SMALL_VALUE_BYTES


@estimate_size.register
def _(obj: list) -> int:
    total = 8
    for x in obj:
        total += estimate_size(x)
    return total


@estimate_size.register
def _(obj: tuple) -> int:
    total = 8
    for x in obj:
        total += estimate_size(x)
    return total


@estimate_size.register
def _(obj: dict) -> int:
    total = 8
    for k, v in obj.items():
        total += estimate_size(k) + estimate_size(v)
    return total
