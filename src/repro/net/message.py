"""Wire-size estimation for RPC payloads.

The simulator needs byte counts to account NIC serialization time. Rather
than actually serializing objects (wasted host CPU), every payload type
declares its wire footprint here. Estimates are deliberately simple and
deterministic: a page travels as its payload size plus a small descriptor;
a metadata tree node is a fixed-size record; control values are small.
"""

from __future__ import annotations

from functools import singledispatch
from typing import Any

#: Serialized footprint of one segment-tree node: key (blob id hash, version,
#: offset, size), child version references or page descriptor, framing.
NODE_WIRE_BYTES = 112

#: Footprint of a page key / descriptor accompanying page payloads.
PAGE_KEY_BYTES = 48

#: Default footprint for small control values (ints, None, short strings).
SMALL_VALUE_BYTES = 16


@singledispatch
def estimate_size(obj: Any) -> int:
    """Best-effort wire footprint of ``obj`` in bytes.

    Types owned by this library register explicit sizes (see
    ``repro.providers.page`` and ``repro.metadata.node``); everything else
    falls back to structural rules below.
    """
    return SMALL_VALUE_BYTES


@estimate_size.register
def _(obj: bytes) -> int:
    return len(obj)


@estimate_size.register
def _(obj: bytearray) -> int:
    return len(obj)


@estimate_size.register
def _(obj: memoryview) -> int:
    return obj.nbytes


@estimate_size.register
def _(obj: str) -> int:
    return max(SMALL_VALUE_BYTES, len(obj))


@estimate_size.register
def _(obj: type(None)) -> int:  # noqa: ANN001
    return SMALL_VALUE_BYTES


@estimate_size.register
def _(obj: list) -> int:
    return 8 + sum(estimate_size(x) for x in obj)


@estimate_size.register
def _(obj: tuple) -> int:
    return 8 + sum(estimate_size(x) for x in obj)


@estimate_size.register
def _(obj: dict) -> int:
    return 8 + sum(
        estimate_size(k) + estimate_size(v) for k, v in obj.items()
    )
