"""Cluster addressing: actor names, endpoints, and the cluster map.

The in-memory drivers address actors with Python values — ``"vm"`` or
``("data", 3)`` — which never leave the interpreter. A multi-host cluster
needs the same addresses in three portable forms:

- **actor names**: the canonical textual spelling of an actor address
  (``"vm"``, ``"data/3"``), stable across processes and usable on a
  command line (``python -m repro.tools.node --actor data/3``) and in the
  TCP handshake that tells a node agent which actor a fresh connection
  serves;
- **endpoints**: ``host:port`` pairs naming where a node agent listens;
- the :class:`ClusterMap`: the actor → endpoint registry a
  :class:`~repro.net.tcp.TcpDriver` is built from, parseable from plain
  ``{"data/0": "10.0.0.5:7000"}`` dicts (the form
  :class:`~repro.core.config.DeploymentSpec.endpoints` carries) so the
  exact same deployment code drives loopback CI ports and real hosts.

Invariants (the actor-name grammar, pinned by
``tests/test_tcp_transport.py``):

- only the two actor shapes the system actually uses are representable —
  a bare string kind (``vm``, ``pm``) and a ``(kind, index)`` pair with
  ``index >= 0`` — which is what makes the textual form total and
  unambiguous; ``format_actor``/``parse_actor`` are exact inverses on
  every representable address;
- the control-plane actors ``vm`` and ``pm`` are first-class addresses:
  a cluster map may bind them to endpoints exactly like ``data/N``
  (:meth:`ClusterMap.has_control_plane` asks whether a map describes a
  fully distributed control plane), which is how a deployment runs with
  no actor in the client parent;
- a :class:`ClusterMap` never maps one actor twice, so every driver dial
  has exactly one destination.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, NamedTuple

from repro.errors import ConfigError

Address = Hashable

#: separator between kind and index in an actor name ("data/3")
_ACTOR_SEP = "/"

#: the deployment-singleton actors: the version manager (the system's one
#: serialization point) and the provider manager (the allocation authority)
CONTROL_ACTORS = ("vm", "pm")


class Endpoint(NamedTuple):
    """Where a node agent listens: a resolvable host and a TCP port."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


def parse_endpoint(text: str | Endpoint) -> Endpoint:
    """``"host:port"`` → :class:`Endpoint` (IPv6 hosts use ``[...]:port``)."""
    if isinstance(text, Endpoint):
        return text
    if isinstance(text, tuple) and len(text) == 2:
        return Endpoint(str(text[0]), int(text[1]))
    if not isinstance(text, str):
        raise ConfigError(f"endpoint must be 'host:port', got {text!r}")
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigError(f"endpoint must be 'host:port', got {text!r}")
    if host.startswith("[") and host.endswith("]"):  # bracketed IPv6
        host = host[1:-1]
    try:
        port_num = int(port)
    except ValueError:
        raise ConfigError(f"endpoint port must be an integer, got {text!r}") from None
    if not 0 <= port_num <= 65535:
        raise ConfigError(f"endpoint port out of range in {text!r}")
    return Endpoint(host, port_num)


def format_actor(address: Address) -> str:
    """Canonical actor name: ``"vm"`` stays, ``("data", 3)`` → ``"data/3"``."""
    if isinstance(address, str):
        if not address or _ACTOR_SEP in address:
            raise ConfigError(f"bad actor address {address!r}")
        return address
    if (
        isinstance(address, tuple)
        and len(address) == 2
        and isinstance(address[0], str)
        and isinstance(address[1], int)
    ):
        kind, index = address
        if not kind or _ACTOR_SEP in kind or index < 0:
            raise ConfigError(f"bad actor address {address!r}")
        return f"{kind}{_ACTOR_SEP}{index}"
    raise ConfigError(
        f"actor address must be a string or (kind, index) tuple, got {address!r}"
    )


def parse_actor(name: str) -> Address:
    """Inverse of :func:`format_actor`: ``"data/3"`` → ``("data", 3)``."""
    if not isinstance(name, str) or not name:
        raise ConfigError(f"bad actor name {name!r}")
    kind, sep, index = name.partition(_ACTOR_SEP)
    if not sep:
        return kind
    if not kind or not index:
        raise ConfigError(f"bad actor name {name!r}")
    try:
        index_num = int(index)
    except ValueError:
        raise ConfigError(f"actor index must be an integer in {name!r}") from None
    if index_num < 0:
        raise ConfigError(f"actor index must be >= 0 in {name!r}")
    return (kind, index_num)


class ClusterMap:
    """Actor → endpoint registry for one cluster deployment.

    Accepts addresses in either form (Python values or actor names) and
    keeps the canonical Python form internally, so driver code never
    string-parses and CLI/config code never tuples."""

    def __init__(
        self, entries: Mapping[Address | str, Endpoint | str] | None = None
    ) -> None:
        self._endpoints: dict[Address, Endpoint] = {}
        for address, endpoint in (entries or {}).items():
            self.add(address, endpoint)

    @classmethod
    def from_spec(cls, endpoints: Mapping[str, str]) -> "ClusterMap":
        """Build from the plain-string dict ``DeploymentSpec.endpoints``."""
        cmap = cls()
        for name, endpoint in endpoints.items():
            cmap.add(parse_actor(name), parse_endpoint(endpoint))
        return cmap

    def add(self, address: Address | str, endpoint: Endpoint | str) -> None:
        if isinstance(address, str) and _ACTOR_SEP in address:
            address = parse_actor(address)
        format_actor(address)  # validate the shape
        if address in self._endpoints:
            raise ConfigError(f"actor {format_actor(address)!r} mapped twice")
        self._endpoints[address] = parse_endpoint(endpoint)

    def endpoint_for(self, address: Address) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise ConfigError(
                f"no endpoint for actor {format_actor(address)!r}"
            ) from None

    def actors_at(self, endpoint: Endpoint | str) -> list[Address]:
        """Every actor a given agent endpoint hosts (colocation view)."""
        endpoint = parse_endpoint(endpoint)
        return [a for a, e in self._endpoints.items() if e == endpoint]

    def endpoints(self) -> list[Endpoint]:
        """Distinct agent endpoints, in first-mapped order."""
        seen: dict[Endpoint, None] = {}
        for endpoint in self._endpoints.values():
            seen.setdefault(endpoint, None)
        return list(seen)

    def has_control_plane(self) -> bool:
        """True when the map binds *both* control-plane actors (``vm`` and
        ``pm``) to endpoints — i.e. it describes a fully distributed
        deployment where no actor lives in the client parent."""
        return all(actor in self._endpoints for actor in CONTROL_ACTORS)

    def to_spec(self) -> dict[str, str]:
        """Plain-string form suitable for ``DeploymentSpec.endpoints``."""
        return {
            format_actor(a): str(e) for a, e in self._endpoints.items()
        }

    def __iter__(self) -> Iterator[Address]:
        return iter(self._endpoints)

    def __len__(self) -> int:
        return len(self._endpoints)

    def __contains__(self, address: Address) -> bool:
        return address in self._endpoints

    def items(self) -> Iterator[tuple[Address, Endpoint]]:
        return iter(self._endpoints.items())

    def __repr__(self) -> str:
        return f"ClusterMap({self.to_spec()!r})"
