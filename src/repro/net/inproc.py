"""Direct-dispatch driver.

The simplest execution substrate: actors are plain objects in the current
process and batches are executed sequentially. Used by functional tests,
the examples, and the supernova pipeline, where correctness — not timing —
is the point.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.net.sansio import Actor, Address, Protocol, run_inproc
from repro.obs.telemetry import telemetry_of


class InprocDriver:
    """Driver facade over :func:`repro.net.sansio.run_inproc`.

    Also the place where deployments register/unregister actors; the
    registry is a live mapping, so actors added after construction (e.g. a
    data provider joining) become reachable immediately.
    """

    def __init__(self, registry: Mapping[Address, Actor] | None = None) -> None:
        self._registry: dict[Address, Actor] = dict(registry or {})

    def register(self, address: Address, actor: Actor) -> None:
        if address in self._registry:
            raise ValueError(f"address {address!r} already registered")
        self._registry[address] = actor

    def unregister(self, address: Address) -> None:
        self._registry.pop(address, None)

    def addresses(self) -> list[Address]:
        return list(self._registry)

    def actor(self, address: Address) -> Actor:
        return self._registry[address]

    def telemetry(self, address: Address) -> dict[str, Any]:
        """One actor's telemetry report, same shape as the concurrent
        drivers' (this driver has no wire layer, so the wire counters are
        ``None``)."""
        return {
            "wire_rpcs": None,
            "sub_calls": None,
            "telemetry": telemetry_of(self._registry[address]).snapshot(),
        }

    def run(self, proto: Protocol[Any]) -> Any:
        """Execute a protocol to completion and return its value."""
        return run_inproc(proto, self._registry)
