"""Multi-process driver: one OS process per actor, pickle frames over sockets.

This is the transport that finally makes real-concurrency throughput
numbers *meaningful*: the threaded driver demonstrates the paper's
concurrency semantics but every actor shares the client interpreter's GIL,
so its wall-clock numbers measure lock contention, not the system. Here
each data/metadata provider actor runs in its own spawned worker process —
the paper's one-process-per-node deployment for real — and RPCs cross the
boundary as length-prefixed pickle messages (:mod:`repro.net.codec`) over
a ``socketpair`` per worker.

Framing is *identical* to the threaded and simulated drivers: batches
execute exactly the wire groups planned by
:func:`repro.net.sansio.plan_wire_groups`, one message per destination per
batch carrying all of that destination's sub-calls, and at most one
completion wakeup per batch (the caller-side latch is shared with the
threaded driver). The cross-driver conformance suite asserts wire-RPC and
sub-call counts match the threaded/simulated/TCP transports bit for bit.

The caller-side connection machinery — pending-request registry, sender
thread per peer, header-only reply routing, drain-as-``RemoteError`` on
peer death — is :class:`repro.net.wire.RpcChannel`, shared verbatim with
the TCP driver; what is specific here is the *connection kind* (an
inherited ``socketpair``) and the worker lifecycle:

- with the ``forkserver`` start method the package is preloaded into the
  fork server, so workers fork with warm modules instead of each paying
  a full interpreter boot on the deployment's first RPC;
- a worker that dies — crash, kill, codec corruption — completes every
  in-flight and future call against it with a
  :class:`~repro.errors.RemoteError`, so protocols fail over across
  replicas after a worker loss exactly as they do after an injected
  actor crash; nothing blocks on a corpse.

Topology: actors that *are* the serialization point by design — the
version manager and provider manager — stay in the parent process on
dedicated service threads (their RPCs are tiny; shipping them out of
process buys no parallelism and costs a round trip), while the
data/metadata providers, where the paper's parallelism lives, each get a
worker process. Any actor can be placed either way via
:meth:`ProcessDriver.register` (in-parent service thread) or
:meth:`ProcessDriver.register_process` (worker process).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import socket
import threading
from typing import Any, Callable, Mapping

from repro.errors import RemoteError
from repro.net.codec import MessageDecoder, decode_body, encode_message
from repro.net.sansio import Actor, Address
from repro.net.wire import (
    CTL_SHUTDOWN,
    CTL_STATS,
    CTL_TELEMETRY,
    RECV_CHUNK,
    RemoteActorDriver,
    RpcChannel,
    encode_reply,
    run_calls,
    tune_socket,
)
from repro.obs.telemetry import telemetry_of
from repro.obs.trace import clear_server_context, set_server_context

#: environment override for the multiprocessing start method
START_METHOD_ENV = "REPRO_MP_START"


def _default_start_method() -> str:
    """``forkserver`` where available (fast forks, no parent threads
    inherited), else ``spawn``; never bare ``fork`` — the parent runs
    service and receiver threads, which fork does not survive safely."""
    override = os.environ.get(START_METHOD_ENV)
    if override:
        return override
    if "forkserver" in multiprocessing.get_all_start_methods():
        return "forkserver"
    return "spawn"


def _probe_burn(n: int) -> int:
    """Pure-Python CPU burn for :func:`parallel_speedup_probe`."""
    acc = 0
    for i in range(n):
        acc = (acc + i * i) & 0xFFFFFFFF
    return acc


def _probe_worker(inbox, outbox) -> None:
    while True:
        n = inbox.get()
        if n is None:
            return
        outbox.put(_probe_burn(n))


def parallel_speedup_probe(n: int = 3_000_000) -> float:
    """Measured speedup of two worker processes over one thread on pure
    CPU work: the host's *effective* parallel headroom right now.

    ``os.cpu_count()`` reports installed cores; on shared/virtualized
    hosts what matters is how many are actually schedulable this minute.
    The transport-scaling benchmark uses this to decide whether the
    "process beats threaded on a multi-core host" assertion's premise —
    a multi-core host — is even satisfied. Returns ~1.0 on an effectively
    single-core host, ~2.0 on two free cores.

    The workers are persistent (started, warmed, *then* timed), so
    process start-up cost never pollutes the measurement.
    """
    import time

    ctx = multiprocessing.get_context(_default_start_method())
    inbox = ctx.SimpleQueue()
    outbox = ctx.SimpleQueue()
    procs = [
        ctx.Process(target=_probe_worker, args=(inbox, outbox), daemon=True)
        for _ in range(2)
    ]
    try:
        for p in procs:
            p.start()
        for _ in procs:  # handshake: both workers booted and responsive
            inbox.put(1000)
        for _ in procs:
            outbox.get()
        start = time.perf_counter()
        _probe_burn(n)
        _probe_burn(n)
        serial = time.perf_counter() - start
        start = time.perf_counter()
        inbox.put(n)
        inbox.put(n)
        outbox.get()
        outbox.get()
        parallel = time.perf_counter() - start
        return serial / parallel if parallel > 0 else 1.0
    finally:
        for _ in procs:
            inbox.put(None)
        for p in procs:
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - stuck probe
                p.kill()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _worker_main(
    sock: socket.socket, address: Address, factory: Callable, args: tuple, kwargs: dict
) -> None:
    """Service loop of one actor process.

    Builds the actor *in the worker* (constructor spec travels, state does
    not) and serves messages FIFO: one request message = one wire RPC
    carrying aggregated sub-calls, mirroring the threaded driver's inbox
    items.

    A pump thread keeps the socket drained while the actor computes, so a
    caller streaming the next batch never blocks on a worker that is busy
    serving the previous one — the same decoupling the threaded driver
    gets for free from its unbounded inbox queue.
    """
    actor: Actor = factory(*args, **kwargs)
    served_rpcs = 0
    served_calls = 0
    inbox: queue.SimpleQueue = queue.SimpleQueue()

    def pump() -> None:
        while True:
            try:
                chunk = sock.recv(RECV_CHUNK)
            except OSError:
                chunk = b""
            inbox.put(chunk)
            if not chunk:
                return

    threading.Thread(target=pump, name="wire-pump", daemon=True).start()
    decoder = MessageDecoder()
    try:
        while True:
            chunk = inbox.get()
            if not chunk:
                return  # parent went away: nothing left to serve
            for req_id, body in decoder.feed(chunk):
                decoded = decode_body(body)
                # arity-tolerant: rpc envelopes may carry a trace id
                kind, payload = decoded[0], decoded[1]
                if kind == "rpc":
                    served_rpcs += 1
                    served_calls += len(payload)
                    trace = decoded[2] if len(decoded) > 2 else None
                    # queue wait is not measurable here (the pump thread
                    # hands over whole chunks, not stamped messages)
                    set_server_context(trace, 0, len(body))
                    try:
                        sock.sendall(
                            encode_reply(
                                req_id, run_calls(actor, address, payload)
                            )
                        )
                    finally:
                        clear_server_context()
                elif kind == CTL_STATS:
                    sock.sendall(
                        encode_message(
                            req_id,
                            {"wire_rpcs": served_rpcs, "sub_calls": served_calls},
                        )
                    )
                elif kind == CTL_TELEMETRY:
                    # scrape control: not counted in served_rpcs/served_calls
                    sock.sendall(
                        encode_message(
                            req_id,
                            {
                                "wire_rpcs": served_rpcs,
                                "sub_calls": served_calls,
                                "telemetry": telemetry_of(actor).snapshot(),
                            },
                        )
                    )
                elif kind == CTL_SHUTDOWN:
                    sock.sendall(encode_message(req_id, True))
                    return
                else:
                    sock.sendall(
                        encode_message(
                            req_id,
                            RemoteError(
                                "UnknownControl", f"bad message kind {kind!r}"
                            ),
                        )
                    )
    finally:
        sock.close()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Parent-side endpoint of one worker process: an :class:`RpcChannel`
    over the inherited socketpair, plus the process lifecycle. Death is
    terminal — unlike a TCP peer, a killed worker process never comes
    back, so there is no reconnect path."""

    def __init__(
        self, ctx, address: Address, factory: Callable, args: tuple, kwargs: dict
    ) -> None:
        self.address = address
        parent_sock, child_sock = socket.socketpair()
        tune_socket(parent_sock)
        tune_socket(child_sock)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_sock, address, factory, args, kwargs),
            name=f"actor-{address}",
            daemon=True,
        )
        self.process.start()
        child_sock.close()
        # No on_down callback: only lifecycle methods, on the caller's
        # thread, may poll the process (forkserver's Popen.poll reads the
        # status pipe; a concurrent poll from the channel's receiver
        # thread would split that read and lose the exit code as a bogus
        # 255).
        self.channel = RpcChannel(
            parent_sock, f"worker {address!r}", error_label="WorkerUnavailable"
        )

    @property
    def dead_reason(self) -> str | None:
        return self.channel.down_reason

    def submit(self, group, slot, latch, gen, trace=None) -> None:
        self.channel.submit(group, slot, latch, gen, trace)

    def control(self, kind: str, timeout: float = 10.0) -> Any:
        return self.channel.control(kind, timeout=timeout)

    # -- lifecycle -------------------------------------------------------

    def stop(self, timeout: float = 10.0) -> None:
        """Orderly shutdown; escalates to terminate/kill on a hung worker."""
        try:
            self.channel.control(CTL_SHUTDOWN, timeout=timeout)
        except (RemoteError, TimeoutError):
            pass  # already dead or hung; escalate below
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(5)
        self.channel.close("worker stopped by driver close")

    def kill(self) -> None:
        """Hard-kill the worker (failure injection for tests/benches)."""
        self.process.kill()
        self.process.join(timeout=10)


class ProcessDriver(RemoteActorDriver):
    """Drives protocols against a mix of worker-process and in-parent actors.

    Extends :class:`~repro.net.wire.RemoteActorDriver`: ``register``
    places an actor on an in-parent service thread (exactly the threaded
    driver's semantics), ``register_process`` spawns it into its own OS
    process. The protocol loop, batch latch, ``spawn``/futures and
    transport counters are shared, so ``transport_stats`` reads
    identically across all the real drivers.
    """

    def __init__(
        self,
        registry: Mapping[Address, Actor] | None = None,
        *,
        mp_context: str | None = None,
    ) -> None:
        super().__init__(registry)
        method = mp_context or _default_start_method()
        self._ctx = multiprocessing.get_context(method)
        if method == "forkserver":
            # Preload the package into the fork server so every worker
            # forks with warm modules. Without this, N workers each
            # re-import the world concurrently and the first RPC of a
            # fresh deployment stalls for seconds behind their boot.
            # (No-op if the fork server is already running.)
            try:
                self._ctx.set_forkserver_preload(["repro.deploy.process"])
            except Exception:  # pragma: no cover - best-effort fast path
                pass
        self.start_method = method

    # -- registration ----------------------------------------------------

    def register_process(
        self, address: Address, factory: Callable[..., Actor], *args: Any, **kwargs: Any
    ) -> None:
        """Spawn ``factory(*args, **kwargs)`` as the actor at ``address``.

        The *constructor spec* crosses the boundary, not a built actor:
        worker state lives exclusively in the worker from the first
        instruction, so there is no window where parent and child both
        hold a copy.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("driver is closed")
            if address in self._servers or address in self._remotes:
                raise ValueError(f"address {address!r} already registered")
            self._remotes[address] = _WorkerHandle(
                self._ctx, address, factory, args, kwargs
            )

    def worker_addresses(self) -> list[Address]:
        return self.remote_addresses()

    # -- introspection ---------------------------------------------------

    def worker_pids(self) -> dict[Address, int | None]:
        with self._lock:
            return {a: w.process.pid for a, w in self._remotes.items()}

    # -- failure injection ----------------------------------------------

    def kill_worker(self, address: Address) -> None:
        """SIGKILL a worker process; in-flight and future calls against it
        complete with ``RemoteError`` (the fail-over path under test)."""
        with self._lock:
            worker = self._remotes[address]
        worker.kill()

    # -- lifecycle -------------------------------------------------------

    def worker_exitcodes(self) -> dict[Address, int | None]:
        """Exit codes after :meth:`close` (0 = clean shutdown)."""
        with self._lock:
            return {a: w.process.exitcode for a, w in self._remotes.items()}
