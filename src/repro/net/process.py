"""Multi-process driver: one OS process per actor, pickle frames over sockets.

This is the transport that finally makes real-concurrency throughput
numbers *meaningful*: the threaded driver demonstrates the paper's
concurrency semantics but every actor shares the client interpreter's GIL,
so its wall-clock numbers measure lock contention, not the system. Here
each data/metadata provider actor runs in its own spawned worker process —
the paper's one-process-per-node deployment for real — and RPCs cross the
boundary as length-prefixed pickle messages (:mod:`repro.net.codec`) over
a ``socketpair`` per worker.

Framing is *identical* to the threaded and simulated drivers: batches
execute exactly the wire groups planned by
:func:`repro.net.sansio.plan_wire_groups`, one message per destination per
batch carrying all of that destination's sub-calls, and at most one
completion wakeup per batch (the caller-side latch is shared with the
threaded driver). The cross-driver conformance suite asserts wire-RPC and
sub-call counts match the threaded/simulated transports bit for bit.

The wire is engineered for throughput, not just correctness:

- one ``sendall`` per message (the codec's length prefix is the only
  framing — no double-framing through ``Connection``), with enlarged
  socket buffers so a caller rarely blocks on a busy worker's inbox;
- replies are routed by the 12-byte message header alone: the per-worker
  receiver thread never unpickles a body, it hands the raw bytes to the
  batch latch and the *caller* thread decodes its own results — megabyte
  page payloads never serialize behind one receiver's GIL slice;
- with the ``forkserver`` start method the package is preloaded into the
  fork server, so workers fork with warm modules instead of each paying
  a full interpreter boot on the deployment's first RPC.

Topology: actors that *are* the serialization point by design — the
version manager and provider manager — stay in the parent process on
dedicated service threads (their RPCs are tiny; shipping them out of
process buys no parallelism and costs a round trip), while the
data/metadata providers, where the paper's parallelism lives, each get a
worker process. Any actor can be placed either way via
:meth:`ProcessDriver.register` (in-parent service thread) or
:meth:`ProcessDriver.register_process` (worker process).

Failure semantics: a worker that dies — crash, kill, codec corruption —
completes every in-flight and future call against it with a
:class:`~repro.errors.RemoteError`, delivered through the same
``allow_error`` machinery as handler exceptions. Protocols therefore fail
over across replicas after a worker loss exactly as they do after an
injected actor crash; nothing blocks on a corpse.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import socket
import threading
from typing import Any, Callable, Mapping

from repro.errors import RemoteError
from repro.net.codec import (
    MessageDecoder,
    WireCodecError,
    decode_body,
    encode_message,
)
from repro.net.sansio import (
    Actor,
    Address,
    Batch,
    Call,
    WireGroup,
    deliver,
    dispatch_call,
    plan_wire_groups,
)
from repro.net.threaded import ThreadedDriver, _BatchLatch

#: environment override for the multiprocessing start method
START_METHOD_ENV = "REPRO_MP_START"

#: socket receive chunk: large enough to drain several page-sized messages
#: per syscall when replies queue up
_RECV_CHUNK = 1 << 20

#: requested SO_SNDBUF/SO_RCVBUF: lets a full page batch leave the caller
#: in one non-blocking sendall even while the worker is mid-computation
_SOCK_BUF = 1 << 20

#: control message kinds understood by the worker loop (beyond "rpc")
_CTL_STATS = "stats"
_CTL_SHUTDOWN = "shutdown"


def _default_start_method() -> str:
    """``forkserver`` where available (fast forks, no parent threads
    inherited), else ``spawn``; never bare ``fork`` — the parent runs
    service and receiver threads, which fork does not survive safely."""
    override = os.environ.get(START_METHOD_ENV)
    if override:
        return override
    if "forkserver" in multiprocessing.get_all_start_methods():
        return "forkserver"
    return "spawn"


def _probe_burn(n: int) -> int:
    """Pure-Python CPU burn for :func:`parallel_speedup_probe`."""
    acc = 0
    for i in range(n):
        acc = (acc + i * i) & 0xFFFFFFFF
    return acc


def _probe_worker(inbox, outbox) -> None:
    while True:
        n = inbox.get()
        if n is None:
            return
        outbox.put(_probe_burn(n))


def parallel_speedup_probe(n: int = 3_000_000) -> float:
    """Measured speedup of two worker processes over one thread on pure
    CPU work: the host's *effective* parallel headroom right now.

    ``os.cpu_count()`` reports installed cores; on shared/virtualized
    hosts what matters is how many are actually schedulable this minute.
    The transport-scaling benchmark uses this to decide whether the
    "process beats threaded on a multi-core host" assertion's premise —
    a multi-core host — is even satisfied. Returns ~1.0 on an effectively
    single-core host, ~2.0 on two free cores.

    The workers are persistent (started, warmed, *then* timed), so
    process start-up cost never pollutes the measurement.
    """
    import time

    ctx = multiprocessing.get_context(_default_start_method())
    inbox = ctx.SimpleQueue()
    outbox = ctx.SimpleQueue()
    procs = [
        ctx.Process(target=_probe_worker, args=(inbox, outbox), daemon=True)
        for _ in range(2)
    ]
    try:
        for p in procs:
            p.start()
        for _ in procs:  # handshake: both workers booted and responsive
            inbox.put(1000)
        for _ in procs:
            outbox.get()
        start = time.perf_counter()
        _probe_burn(n)
        _probe_burn(n)
        serial = time.perf_counter() - start
        start = time.perf_counter()
        inbox.put(n)
        inbox.put(n)
        outbox.get()
        outbox.get()
        parallel = time.perf_counter() - start
        return serial / parallel if parallel > 0 else 1.0
    finally:
        for _ in procs:
            inbox.put(None)
        for p in procs:
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - stuck probe
                p.kill()


def _tune_socket(sock: socket.socket) -> None:
    for opt in (socket.SO_SNDBUF, socket.SO_RCVBUF):
        try:
            sock.setsockopt(socket.SOL_SOCKET, opt, _SOCK_BUF)
        except OSError:  # pragma: no cover - platform-capped buffers are fine
            pass


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _worker_main(
    sock: socket.socket, address: Address, factory: Callable, args: tuple, kwargs: dict
) -> None:
    """Service loop of one actor process.

    Builds the actor *in the worker* (constructor spec travels, state does
    not) and serves messages FIFO: one request message = one wire RPC
    carrying aggregated sub-calls, mirroring the threaded driver's inbox
    items.

    A pump thread keeps the socket drained while the actor computes, so a
    caller streaming the next batch never blocks on a worker that is busy
    serving the previous one — the same decoupling the threaded driver
    gets for free from its unbounded inbox queue.
    """
    actor: Actor = factory(*args, **kwargs)
    served_rpcs = 0
    served_calls = 0
    inbox: queue.SimpleQueue = queue.SimpleQueue()

    def pump() -> None:
        while True:
            try:
                chunk = sock.recv(_RECV_CHUNK)
            except OSError:
                chunk = b""
            inbox.put(chunk)
            if not chunk:
                return

    threading.Thread(target=pump, name="wire-pump", daemon=True).start()
    decoder = MessageDecoder()
    try:
        while True:
            chunk = inbox.get()
            if not chunk:
                return  # parent went away: nothing left to serve
            for req_id, body in decoder.feed(chunk):
                kind, payload = decode_body(body)
                if kind == "rpc":
                    served_rpcs += 1
                    served_calls += len(payload)
                    results = [
                        dispatch_call(actor, Call(address, method, call_args))
                        for method, call_args in payload
                    ]
                    sock.sendall(_encode_reply(req_id, results))
                elif kind == _CTL_STATS:
                    sock.sendall(
                        encode_message(
                            req_id,
                            {"wire_rpcs": served_rpcs, "sub_calls": served_calls},
                        )
                    )
                elif kind == _CTL_SHUTDOWN:
                    sock.sendall(encode_message(req_id, True))
                    return
                else:
                    sock.sendall(
                        encode_message(
                            req_id,
                            RemoteError(
                                "UnknownControl", f"bad message kind {kind!r}"
                            ),
                        )
                    )
    finally:
        sock.close()


def _encode_reply(req_id: int, results: list) -> bytes:
    """Encode a result list, downgrading unpicklable values to errors.

    ``dispatch_call`` already wraps handler exceptions in
    :class:`RemoteError` (whose ``__reduce__`` drops unpicklable
    originals), so this fallback only fires when a *successful* handler
    returns something that cannot cross the wire — a bug worth naming
    precisely instead of killing the worker's connection.
    """
    try:
        return encode_message(req_id, results)
    except WireCodecError:
        safe: list[Any] = []
        for value in results:
            try:
                encode_message(0, value)
                safe.append(value)
            except WireCodecError as exc:
                safe.append(
                    RemoteError(
                        "UnpicklableResult", f"{type(value).__name__}: {exc}"
                    )
                )
        return encode_message(req_id, safe)


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Parent-side endpoint of one worker process.

    Many caller threads submit concurrently: frames go out through an
    outbound queue drained by a dedicated sender thread (a submit never
    blocks on socket backpressure from a busy worker), and a receiver
    thread routes raw reply bodies (by message header alone — no
    unpickling) to whichever batch latch is waiting. Death (EOF, kill,
    send failure, codec corruption) drains every pending request with a
    ``RemoteError`` and fails all future submissions fast — no caller
    ever blocks on a dead worker.
    """

    def __init__(
        self, ctx, address: Address, factory: Callable, args: tuple, kwargs: dict
    ) -> None:
        self.address = address
        parent_sock, child_sock = socket.socketpair()
        _tune_socket(parent_sock)
        _tune_socket(child_sock)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_sock, address, factory, args, kwargs),
            name=f"actor-{address}",
            daemon=True,
        )
        self.process.start()
        child_sock.close()
        self.sock = parent_sock
        self._pending_lock = threading.Lock()
        #: req_id -> ("rpc", slot, latch, gen) | ("ctl", box, event);
        #: slot/box receive the *encoded* reply body (or a RemoteError)
        self._pending: dict[int, tuple] = {}
        self._req_ids = itertools.count(1)
        self._dead_reason: str | None = None
        self._outbox: queue.SimpleQueue = queue.SimpleQueue()
        self._recv_thread = threading.Thread(
            target=self._recv_loop, name=f"recv-{address}", daemon=True
        )
        self._recv_thread.start()
        self._send_thread = threading.Thread(
            target=self._send_loop, name=f"send-{address}", daemon=True
        )
        self._send_thread.start()

    # -- health ----------------------------------------------------------

    @property
    def dead_reason(self) -> str | None:
        return self._dead_reason

    def _mark_dead(self, reason: str) -> None:
        with self._pending_lock:
            if self._dead_reason is not None:
                return
            self._dead_reason = reason
            drained = list(self._pending.values())
            self._pending.clear()
        error = RemoteError("WorkerUnavailable", reason)
        for entry in drained:
            self._complete(entry, error)

    @staticmethod
    def _complete(entry: tuple, body: Any) -> None:
        """Hand a raw reply body (or a RemoteError) to its waiter."""
        if entry[0] == "rpc":
            _, slot, latch, gen = entry
            slot[0] = body
            latch.group_done(gen)
        else:
            _, box, event = entry
            box[0] = body
            event.set()

    # -- receive ---------------------------------------------------------

    def _recv_loop(self) -> None:
        decoder = MessageDecoder()
        while True:
            try:
                chunk = self.sock.recv(_RECV_CHUNK)
            except OSError:
                chunk = b""
            if not chunk:
                # No process.exitcode here: forkserver's Popen.poll reads
                # the status pipe, and a concurrent poll from stop()'s
                # join() would split that read between two threads (both
                # get EOF, the exit code is lost as a bogus 255). Only
                # lifecycle methods, on the caller's thread, may poll.
                self._mark_dead(f"worker {self.address!r} connection lost")
                return
            try:
                for req_id, body in decoder.feed(chunk):
                    with self._pending_lock:
                        entry = self._pending.pop(req_id, None)
                    if entry is not None:
                        self._complete(entry, body)
            except WireCodecError as exc:
                self._mark_dead(
                    f"worker {self.address!r} sent a corrupt message: {exc}"
                )
                return

    # -- submit ----------------------------------------------------------

    def submit(
        self, group: WireGroup, slot: list, latch: _BatchLatch, gen: int
    ) -> None:
        """Send one wire group; the receiver thread completes the latch.

        ``slot`` is the batch's one-element mailbox for this group: it
        receives the raw reply body, which the *caller* decodes after the
        latch releases (see ``ProcessDriver._execute_batch``).
        """
        payload = [(call.method, call.args) for call in group.calls]
        with self._pending_lock:
            reason = self._dead_reason
            if reason is None:
                req_id = next(self._req_ids)
                self._pending[req_id] = ("rpc", slot, latch, gen)
        if reason is not None:
            slot[0] = RemoteError("WorkerUnavailable", reason)
            latch.group_done(gen)
            return
        try:
            frame = encode_message(req_id, ("rpc", payload))
        except WireCodecError as exc:
            # the *request* is unpicklable: that call is broken, not the
            # worker. Complete the group only if the entry is still ours —
            # a concurrent _mark_dead may have drained (and completed) it,
            # and a second group_done would release the batch latch early.
            with self._pending_lock:
                entry = self._pending.pop(req_id, None)
            if entry is not None:
                slot[0] = RemoteError.wrap(exc)
                latch.group_done(gen)
            return
        self._send(frame)

    def control(self, kind: str, timeout: float = 10.0) -> Any:
        """Round-trip one control message; raises on a dead worker."""
        box: list[Any] = [None]
        event = threading.Event()
        with self._pending_lock:
            reason = self._dead_reason
            if reason is None:
                req_id = next(self._req_ids)
                self._pending[req_id] = ("ctl", box, event)
        if reason is not None:
            raise RemoteError("WorkerUnavailable", reason)
        self._send(encode_message(req_id, (kind, ())))
        if not event.wait(timeout):
            with self._pending_lock:
                self._pending.pop(req_id, None)
            raise TimeoutError(
                f"worker {self.address!r} did not answer {kind!r} in {timeout}s"
            )
        if isinstance(box[0], RemoteError):
            raise box[0]
        value = decode_body(box[0])
        if isinstance(value, RemoteError):
            raise value
        return value

    def _send(self, frame: bytes) -> None:
        self._outbox.put(frame)

    def _send_loop(self) -> None:
        while True:
            frame = self._outbox.get()
            if frame is None:
                return
            try:
                self.sock.sendall(frame)
            except (OSError, ValueError) as exc:
                self._mark_dead(f"send to worker {self.address!r} failed: {exc!r}")
                return

    # -- lifecycle -------------------------------------------------------

    def stop(self, timeout: float = 10.0) -> None:
        """Orderly shutdown; escalates to terminate/kill on a hung worker."""
        try:
            self.control(_CTL_SHUTDOWN, timeout=timeout)
        except (RemoteError, TimeoutError):
            pass  # already dead or hung; escalate below
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(5)
        self._mark_dead("worker stopped by driver close")
        self._outbox.put(None)
        try:
            self.sock.close()
        except OSError:
            pass
        self._recv_thread.join(timeout=5)
        self._send_thread.join(timeout=5)

    def kill(self) -> None:
        """Hard-kill the worker (failure injection for tests/benches)."""
        self.process.kill()
        self.process.join(timeout=10)


class ProcessDriver(ThreadedDriver):
    """Drives protocols against a mix of worker-process and in-parent actors.

    Extends :class:`ThreadedDriver`: ``register`` places an actor on an
    in-parent service thread (exactly the threaded driver's semantics),
    ``register_process`` spawns it into its own OS process. The protocol
    loop, batch latch, ``spawn``/futures and transport counters are
    shared, so ``transport_stats`` reads identically across both real
    drivers.
    """

    def __init__(
        self,
        registry: Mapping[Address, Actor] | None = None,
        *,
        mp_context: str | None = None,
    ) -> None:
        super().__init__(registry)
        method = mp_context or _default_start_method()
        self._ctx = multiprocessing.get_context(method)
        if method == "forkserver":
            # Preload the package into the fork server so every worker
            # forks with warm modules. Without this, N workers each
            # re-import the world concurrently and the first RPC of a
            # fresh deployment stalls for seconds behind their boot.
            # (No-op if the fork server is already running.)
            try:
                self._ctx.set_forkserver_preload(["repro.deploy.process"])
            except Exception:  # pragma: no cover - best-effort fast path
                pass
        self.start_method = method
        self._workers: dict[Address, _WorkerHandle] = {}

    # -- registration ----------------------------------------------------

    def register(self, address: Address, actor: Actor) -> None:
        if address in self._workers:
            raise ValueError(f"address {address!r} already registered (process)")
        super().register(address, actor)

    def register_process(
        self, address: Address, factory: Callable[..., Actor], *args: Any, **kwargs: Any
    ) -> None:
        """Spawn ``factory(*args, **kwargs)`` as the actor at ``address``.

        The *constructor spec* crosses the boundary, not a built actor:
        worker state lives exclusively in the worker from the first
        instruction, so there is no window where parent and child both
        hold a copy.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("driver is closed")
            if address in self._servers or address in self._workers:
                raise ValueError(f"address {address!r} already registered")
            self._workers[address] = _WorkerHandle(
                self._ctx, address, factory, args, kwargs
            )

    def addresses(self) -> list[Address]:
        with self._lock:
            return list(self._servers) + list(self._workers)

    def worker_addresses(self) -> list[Address]:
        with self._lock:
            return list(self._workers)

    # -- introspection ---------------------------------------------------

    def server_stats(self) -> dict[Address, tuple[int, int]]:
        """Per-actor ``(wire_rpcs, sub_calls)``, queried over the wire for
        worker actors (raises ``RemoteError`` for a dead worker)."""
        with self._lock:
            servers = dict(self._servers)
            workers = dict(self._workers)
        stats = {a: (s.served_rpcs, s.served_calls) for a, s in servers.items()}
        for address, worker in workers.items():
            reply = worker.control(_CTL_STATS)
            stats[address] = (reply["wire_rpcs"], reply["sub_calls"])
        return stats

    def worker_pids(self) -> dict[Address, int | None]:
        with self._lock:
            return {a: w.process.pid for a, w in self._workers.items()}

    def call(self, address: Address, method: str, args: tuple = ()) -> Any:
        """One-off RPC outside any protocol (inspection surfaces)."""

        def proto():
            (result,) = yield Batch([Call(address, method, args)])
            return result

        return self.run(proto())

    # -- failure injection ----------------------------------------------

    def kill_worker(self, address: Address) -> None:
        """SIGKILL a worker process; in-flight and future calls against it
        complete with ``RemoteError`` (the fail-over path under test)."""
        with self._lock:
            worker = self._workers[address]
        worker.kill()

    # -- execution -------------------------------------------------------

    def _execute_batch(self, batch: Batch) -> list[Any]:
        calls = batch.calls
        if not calls:
            return []
        groups = plan_wire_groups(calls)
        servers = self._servers
        workers = self._workers
        resolved: list[tuple[Any, Any]] = []
        for group in groups:
            server = servers.get(group.dest)
            if server is not None:
                resolved.append((None, server))
                continue
            worker = workers.get(group.dest)
            if worker is None:
                raise KeyError(f"no actor registered at address {group.dest!r}")
            resolved.append((worker, None))
        results: list[Any] = [None] * len(calls)
        latch = self._latch()
        gen = latch.begin(len(groups))
        slots: list[list | None] = [None] * len(groups)
        for k, ((worker, server), group) in enumerate(zip(resolved, groups)):
            if worker is not None:
                slot: list = [None]
                slots[k] = slot
                worker.submit(group, slot, latch, gen)
            else:
                server.inbox.put((group.calls, group.indices, results, latch, gen))
        latch.wait()
        # Decode worker replies on *this* thread: the receiver threads only
        # routed raw bodies, so payload unpickling happens in the caller
        # that asked for the data, concurrent across caller threads.
        for k, slot in enumerate(slots):
            if slot is None:
                continue
            group = groups[k]
            body = slot[0]
            values = self._decode_group(group, body)
            for index, value in zip(group.indices, values):
                results[index] = value
        return [deliver(c, r) for c, r in zip(calls, results)]

    @staticmethod
    def _decode_group(group: WireGroup, body: Any) -> list:
        n = len(group.calls)
        if isinstance(body, RemoteError):
            return [body] * n
        try:
            values = decode_body(body)
        except WireCodecError as exc:
            return [RemoteError.wrap(exc)] * n
        if not isinstance(values, list) or len(values) != n:
            return [
                RemoteError(
                    "WireProtocolError",
                    f"worker {group.dest!r} answered {n} calls with "
                    f"{type(values).__name__}",
                )
            ] * n
        return values

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            worker.stop()
        super().close()

    def worker_exitcodes(self) -> dict[Address, int | None]:
        """Exit codes after :meth:`close` (0 = clean shutdown)."""
        with self._lock:
            return {a: w.process.exitcode for a, w in self._workers.items()}
