"""Baselines the paper's design is compared against.

The paper's central claim is that fine-grain access needs **no lock on the
string itself**. The natural baseline — what you get from a conventional
design — is a global reader-writer lock around the shared string with
in-place page updates and no versioning:

- :class:`~repro.baselines.locked.InMemoryLockedBlob` — functional
  single-process baseline (shows the *semantic* gap: no snapshots, readers
  block, lost history);
- :mod:`repro.baselines.locked` sim harness — the same data movement as
  the lock-free system but under a global RW lock, on the simulated
  cluster (shows the *performance* gap: writer bandwidth collapses as
  1/n; ablation bench A).

A second ablation baseline — centralized metadata (single metadata
provider) — needs no extra code: deploy with ``n_meta=1``.
"""

from repro.baselines.locked import InMemoryLockedBlob, LockedClusterSim, SimRWLock

__all__ = ["InMemoryLockedBlob", "LockedClusterSim", "SimRWLock"]
