"""Global reader-writer-lock baseline.

Two artifacts:

- :class:`InMemoryLockedBlob`: the conventional shared-string design in
  one process — a single RW lock, in-place updates, no versions. Used by
  tests and examples to contrast semantics (readers observe torn history
  ordering-wise: only the newest state exists).
- :class:`LockedClusterSim`: the performance baseline on the simulated
  cluster. Data movement is identical to the lock-free system's data phase
  (pages striped over providers, NIC-accurate transfers); the difference
  is a global lock around every access. Writers serialize end-to-end, so
  aggregate write bandwidth is one client's bandwidth regardless of client
  count — the collapse ablation bench A measures.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Generator, Literal

from repro.core.config import DeploymentSpec
from repro.sim.engine import Event, Simulator
from repro.sim.network import ClusterSpec, Network, SimNode

Kind = Literal["read", "write"]


# ---------------------------------------------------------------------------
# functional baseline
# ---------------------------------------------------------------------------


class InMemoryLockedBlob:
    """A flat byte array behind one reader-writer lock. No versioning.

    The RW lock is writer-preferring and fair enough for tests; the point
    is the *model*: one mutable string, exclusive writes, no snapshots.
    """

    def __init__(self, size: int) -> None:
        self._buf = bytearray(size)
        self._mutex = threading.Lock()
        self._readers_done = threading.Condition(self._mutex)
        self._writers_done = threading.Condition(self._mutex)
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self.reads = 0
        self.writes = 0

    @property
    def size(self) -> int:
        return len(self._buf)

    def read(self, offset: int, size: int) -> bytes:
        with self._mutex:
            while self._writer_active or self._writers_waiting:
                self._writers_done.wait()
            self._active_readers += 1
        try:
            # shared section: concurrent readers copy freely
            return bytes(self._buf[offset : offset + size])
        finally:
            with self._mutex:
                self._active_readers -= 1
                self.reads += 1
                if self._active_readers == 0:
                    self._readers_done.notify_all()

    def write(self, data: bytes, offset: int) -> None:
        with self._mutex:
            self._writers_waiting += 1
            while self._writer_active or self._active_readers:
                self._readers_done.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            # exclusive section: in-place update, history destroyed
            self._buf[offset : offset + len(data)] = data
        finally:
            with self._mutex:
                self._writer_active = False
                self.writes += 1
                self._writers_done.notify_all()
                self._readers_done.notify_all()


# ---------------------------------------------------------------------------
# simulated baseline
# ---------------------------------------------------------------------------


class SimRWLock:
    """FIFO reader-writer lock on simulated time.

    Requests are granted strictly in arrival order; consecutive readers at
    the head of the queue are granted together (shared access), a writer
    is granted alone.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._queue: deque[tuple[Kind, Event]] = deque()
        self._active_readers = 0
        self._writer_active = False
        self.max_readers = 0

    def acquire(self, kind: Kind) -> Event:
        ev = self.sim.event()
        self._queue.append((kind, ev))
        self._drain()
        return ev

    def release(self, kind: Kind) -> None:
        if kind == "write":
            assert self._writer_active
            self._writer_active = False
        else:
            assert self._active_readers > 0
            self._active_readers -= 1
        self._drain()

    def _drain(self) -> None:
        while self._queue:
            kind, ev = self._queue[0]
            if kind == "write":
                if self._writer_active or self._active_readers:
                    return
                self._queue.popleft()
                self._writer_active = True
                ev.succeed(None)
                return
            if self._writer_active:
                return
            self._queue.popleft()
            self._active_readers += 1
            self.max_readers = max(self.max_readers, self._active_readers)
            ev.succeed(None)


class LockedClusterSim:
    """The lock-based system on the simulated cluster."""

    def __init__(
        self,
        spec: DeploymentSpec | None = None,
        cluster: ClusterSpec | None = None,
    ) -> None:
        self.spec = spec or DeploymentSpec()
        self.sim = Simulator()
        self.network = Network(self.sim, cluster)
        self.lock_node = self.network.add_node("lock-manager")
        self.lock = SimRWLock(self.sim)
        self.provider_nodes = [
            self.network.add_node(f"prov-{i}") for i in range(self.spec.n_data)
        ]
        self.client_nodes = [
            self.network.add_node(f"client-{i}", role="client")
            for i in range(self.spec.n_clients)
        ]

    def counters(self) -> dict[str, int]:
        """Engine-load counters (same keys as SimDeployment where defined)."""
        return {
            "events_processed": self.sim.events_processed,
            "processes_started": self.sim._processes_started,
            "messages_sent": self.network.messages_sent,
            "bytes_sent": self.network.bytes_sent,
        }

    def access_proto(
        self, client_index: int, size: int, kind: Kind
    ) -> Generator[Event, None, float]:
        """One locked access; returns its duration in simulated seconds."""
        sim, net, spec = self.sim, self.network, self.network.spec
        client = self.client_nodes[client_index]
        start = sim.now

        # 1. global lock acquisition (request + grant over the wire)
        yield from net.transfer(client, self.lock_node, 64)
        yield self.lock_node.cpu.submit(spec.rpc_overhead)
        yield self.lock.acquire(kind)
        yield from net.transfer(self.lock_node, client, 64)

        # 2. data phase: identical striping to the lock-free system
        try:
            per = size // len(self.provider_nodes)
            rem = size % len(self.provider_nodes)
            procs = []
            for i, prov in enumerate(self.provider_nodes):
                chunk = per + (1 if i < rem else 0)
                if chunk == 0:
                    continue
                procs.append(
                    sim.process(
                        self._chunk_transfer(client, prov, chunk, kind),
                        name=f"locked-{kind}-{i}",
                    )
                )
            if procs:
                yield sim.all_of(procs)
        finally:
            # 3. release (one-way message; lock state updates on delivery)
            yield from net.transfer(client, self.lock_node, 32)
            self.lock.release(kind)
        return sim.now - start

    def _chunk_transfer(
        self, client: SimNode, prov: SimNode, chunk: int, kind: Kind
    ) -> Generator[Event, None, None]:
        spec = self.network.spec
        if kind == "write":
            yield client.cpu.submit(spec.rpc_overhead)
            yield from self.network.transfer(client, prov, chunk)
            yield prov.cpu.submit(spec.rpc_overhead + spec.server_byte_cpu * chunk)
        else:
            yield from self.network.transfer(client, prov, 64)  # request
            yield prov.cpu.submit(spec.rpc_overhead + spec.server_byte_cpu * chunk)
            yield from self.network.transfer(prov, client, chunk)
            yield client.cpu.submit(spec.rpc_overhead)

    def run_clients(
        self, n_clients: int, iterations: int, size: int, kind: Kind
    ) -> list[float]:
        """Per-client mean bandwidth (MB/s) for a concurrent access loop."""
        results: list[list[float]] = [[] for _ in range(n_clients)]

        def client_loop(idx: int) -> Generator[Event, None, None]:
            for _ in range(iterations):
                duration = yield from self.access_proto(idx, size, kind)
                results[idx].append(duration)

        procs = [
            self.sim.process(client_loop(i), name=f"client-{i}")
            for i in range(n_clients)
        ]
        self.sim.run(until=self.sim.all_of(procs))
        mb = size / (1 << 20)
        return [mb * len(ds) / sum(ds) for ds in results]
