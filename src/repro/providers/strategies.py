"""Page-allocation strategies for the provider manager.

The paper requires "some strategy that favors global load balancing"
(§III.A). Three implementations are provided; all are deterministic given
their construction parameters so experiments are reproducible.

A strategy maps ``(npages, providers, load)`` to a list of provider ids,
one per fresh page, where ``load`` is the manager's view of allocated bytes
per provider.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Hashable, Sequence

from repro.dht.hashing import key_id, node_id
from repro.util.rng import substream


class AllocationStrategy(ABC):
    """Strategy interface: choose a provider for each fresh page."""

    #: config-file / CLI name (the key in :func:`make_strategy`'s table);
    #: exposed over the wire via ``pm.config`` so a deployment builder can
    #: verify a remote pm agrees with the client's DeploymentSpec
    name = ""

    @abstractmethod
    def allocate(
        self,
        npages: int,
        providers: Sequence[int],
        load: dict[int, int],
    ) -> list[int]:
        """Return ``npages`` provider ids (repetition allowed)."""

    def reset(self) -> None:
        """Forget internal state (e.g. round-robin cursor)."""

    def params(self) -> dict:
        """Effective constructor parameters (defaults resolved).

        Travels in ``pm.config`` next to :attr:`name` so two strategy
        instances can be compared for *placement equivalence* across
        processes — same class and same params means the same
        deterministic allocation sequence.
        """
        return {}


class RoundRobin(AllocationStrategy):
    """Cycle through providers; simple and perfectly balanced in aggregate.

    This matches the uniform dispersal the paper's experiments rely on: a
    segment of n pages lands on n distinct providers whenever n <= provider
    count, maximizing parallel transfer.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def allocate(
        self, npages: int, providers: Sequence[int], load: dict[int, int]
    ) -> list[int]:
        out = []
        m = len(providers)
        for _ in range(npages):
            out.append(providers[self._cursor % m])
            self._cursor += 1
        return out

    def reset(self) -> None:
        self._cursor = 0


class LeastLoaded(AllocationStrategy):
    """Greedy: each page goes to the provider with the fewest allocated
    bytes (counting pages allocated earlier in the same request)."""

    name = "least_loaded"

    def __init__(self, pagesize_hint: int = 1) -> None:
        self.pagesize_hint = max(1, pagesize_hint)

    def allocate(
        self, npages: int, providers: Sequence[int], load: dict[int, int]
    ) -> list[int]:
        # (load, provider_id) heap; stable for equal loads via provider id.
        heap = [(load.get(p, 0), p) for p in providers]
        heapq.heapify(heap)
        out = []
        for _ in range(npages):
            current, p = heapq.heappop(heap)
            out.append(p)
            heapq.heappush(heap, (current + self.pagesize_hint, p))
        return out

    def params(self) -> dict:
        return {"pagesize_hint": self.pagesize_hint}


class RandomK(AllocationStrategy):
    """Power-of-k-choices: sample k candidates, take the least loaded.

    ``k=1`` degenerates to uniform random placement; ``k=2`` already gives
    near-optimal balance with high probability (classic balls-into-bins
    result), at lower bookkeeping cost than :class:`LeastLoaded`.
    """

    name = "random_k"

    def __init__(self, k: int = 2, seed: int = 0) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = substream(seed, "randomk")
        self._seed = seed

    def allocate(
        self, npages: int, providers: Sequence[int], load: dict[int, int]
    ) -> list[int]:
        out = []
        local = dict(load)
        m = len(providers)
        for _ in range(npages):
            picks = self._rng.integers(0, m, size=min(self.k, m))
            best = min((providers[int(i)] for i in picks), key=lambda p: local.get(p, 0))
            out.append(best)
            local[best] = local.get(best, 0) + 1
        return out

    def reset(self) -> None:
        self._rng = substream(self._seed, "randomk")

    def params(self) -> dict:
        return {"k": self.k, "seed": self._seed}


class HashRing(AllocationStrategy):
    """Consistent-hash placement on a virtual-node ring (elastic clusters).

    Each provider occupies ``vnodes`` positions on the 160-bit ring of
    :mod:`repro.dht.hashing`; a page key's home is the first position
    clockwise of ``key_id(key)``. Because a provider's positions depend
    only on its id, admitting or draining one provider moves only the keys
    whose home interval it gains or loses — the property the elastic
    rebalancer relies on to compute minimal page migrations
    (:meth:`place_key` is the single placement truth shared by the
    allocation path and the migration planner).

    ``allocate`` (the keyless strategy surface) walks providers in ring
    order with a cursor — deterministic and replay-safe like RoundRobin —
    so the strategy stays usable anywhere a strategy is accepted; the
    hash-aware pm allocation path calls :meth:`place_key` instead.
    """

    name = "hash_ring"

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._cursor = 0
        # ring cache per provider set: (sorted positions, position -> pid)
        self._rings: dict[tuple[int, ...], tuple[list[int], dict[int, int]]] = {}

    def _ring(
        self, providers: Sequence[int]
    ) -> tuple[list[int], dict[int, int]]:
        key = tuple(sorted(providers))
        cached = self._rings.get(key)
        if cached is not None:
            return cached
        owner: dict[int, int] = {}
        for pid in key:
            for v in range(self.vnodes):
                owner[node_id(f"provider:{pid}#{v}")] = pid
        positions = sorted(owner)
        if len(self._rings) >= 64:  # membership sets are few; stay bounded
            self._rings.clear()
        self._rings[key] = (positions, owner)
        return positions, owner

    def place_key(
        self, key: Hashable, providers: Sequence[int], count: int = 1
    ) -> list[int]:
        """``count`` distinct providers for ``key``, in ring order.

        Position 0 is the key's home (primary); the rest are the next
        distinct providers clockwise — the replica set, mirroring
        ``ChordNode.replica_targets``.
        """
        positions, owner = self._ring(providers)
        want = min(count, len(set(owner.values())))
        start = bisect_right(positions, key_id(key))
        out: list[int] = []
        for i in range(len(positions)):
            pid = owner[positions[(start + i) % len(positions)]]
            if pid not in out:
                out.append(pid)
                if len(out) == want:
                    break
        return out

    def allocate(
        self, npages: int, providers: Sequence[int], load: dict[int, int]
    ) -> list[int]:
        ring_sorted = sorted(providers, key=lambda p: node_id(f"provider:{p}#0"))
        out = []
        m = len(ring_sorted)
        for _ in range(npages):
            out.append(ring_sorted[self._cursor % m])
            self._cursor += 1
        return out

    def reset(self) -> None:
        self._cursor = 0

    def params(self) -> dict:
        return {"vnodes": self.vnodes}


def make_strategy(name: str, **kwargs: object) -> AllocationStrategy:
    """Factory used by deployment configs: ``round_robin`` / ``least_loaded``
    / ``random_k`` / ``hash_ring``."""
    table = {
        "round_robin": RoundRobin,
        "least_loaded": LeastLoaded,
        "random_k": RandomK,
        "hash_ring": HashRing,
    }
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {sorted(table)}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]
