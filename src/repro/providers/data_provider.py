"""RAM-based data provider.

Stores pages in local memory (the paper's design point: RAM storage for
access efficiency, persistence delegated to a lower tier — see
:mod:`repro.core.persistence` for the optional spill). Pages are write-once:
the provider enforces immutability, which is what makes lock-free reads
safe — a published page can never change under a reader.

RPC surface (see :class:`repro.net.sansio.Actor`):

- ``data.put_page(key, payload)`` -> ``True``
- ``data.get_page(key)`` -> :class:`~repro.providers.page.PagePayload`
- ``data.free_pages(keys)`` -> number actually freed (garbage collection)
- ``data.list_pages(blob_id)`` -> all keys held for a blob (GC sweep)
- ``data.stats()`` -> storage counters
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import (
    ImmutabilityViolation,
    PageCorrupt,
    PageMissing,
    ProviderUnavailable,
)
from repro.providers.page import PageKey, PagePayload, page_checksum


class DataProvider:
    """One data-provider process (one per node in the paper's deployment)."""

    def __init__(self, provider_id: int, spill=None, checksum: bool = False) -> None:
        self.provider_id = provider_id
        self._pages: dict[PageKey, PagePayload] = {}
        self.bytes_stored = 0
        self.puts = 0
        self.gets = 0
        self.failed = False  # failure injection: refuse all service
        self._spill = spill  # optional persistence backend
        #: integrity mode: checksum every real page on put, verify on get
        #: (storage-tier CPU work; virtual pages have no bytes to sum)
        self.checksum = checksum
        self._checksums: dict[PageKey, int] = {}

    # -- storage operations ------------------------------------------------

    def put_page(self, key: PageKey, payload: PagePayload) -> bool:
        self._check_up()
        if key in self._pages:
            raise ImmutabilityViolation(
                f"provider {self.provider_id}: page {key} already stored"
            )
        self._pages[key] = payload
        self.bytes_stored += payload.nbytes
        self.puts += 1
        if self.checksum:
            digest = page_checksum(payload)
            if digest is not None:
                self._checksums[key] = digest
        if self._spill is not None:
            self._spill.store(key, payload)
        return True

    def get_page(self, key: PageKey) -> PagePayload:
        self._check_up()
        self.gets += 1
        payload = self._pages.get(key)
        if payload is None and self._spill is not None:
            payload = self._spill.load(key)
        if payload is None:
            raise PageMissing(f"provider {self.provider_id}: no page {key}")
        # Verify RAM *and* spill loads: the persistence tier is the path
        # most exposed to corruption (torn/misdirected writes on disk).
        expected = self._checksums.get(key)
        if expected is not None and page_checksum(payload) != expected:
            raise PageCorrupt(
                f"provider {self.provider_id}: page {key} failed its checksum"
            )
        return payload

    def has_page(self, key: PageKey) -> bool:
        return key in self._pages

    def free_pages(self, keys: Iterable[PageKey]) -> int:
        self._check_up()
        freed = 0
        for key in keys:
            payload = self._pages.pop(key, None)
            if payload is not None:
                self.bytes_stored -= payload.nbytes
                self._checksums.pop(key, None)
                freed += 1
                if self._spill is not None:
                    self._spill.drop(key)
        return freed

    def list_pages(self, blob_id: str) -> list[PageKey]:
        self._check_up()
        return [k for k in self._pages if k.blob_id == blob_id]

    def iter_pages(self, blob_id: str) -> Iterable[tuple[PageKey, PagePayload]]:
        """``(key, payload)`` for every RAM-resident page of a blob.

        Inspection surface (no RPC, no failure injection): the
        cross-driver conformance suite uses it to compare stored page
        contents across deployments.
        """
        for key, payload in self._pages.items():
            if key.blob_id == blob_id:
                yield key, payload

    def dump_pages(self, blob_id: str) -> list[tuple[PageKey, PagePayload]]:
        """:meth:`iter_pages` as an RPC-shaped list.

        Lets out-of-process deployments expose the same inspection surface
        the conformance suite reads in-process; payloads materialize at
        the codec boundary (see ``PagePayload.__reduce__``).
        """
        return list(self.iter_pages(blob_id))

    def manifest(self) -> list[tuple[PageKey, int]]:
        """``(key, nbytes)`` for every RAM-resident page — the rebalance
        planner's input (what this provider *actually* holds, which after
        crashes or partial migrations may differ from what was allocated)."""
        self._check_up()
        return [(key, payload.nbytes) for key, payload in self._pages.items()]

    def migrate_in(self, key: PageKey, payload: PagePayload) -> bool:
        """Accept a page handed off by another provider.

        Idempotent, unlike :meth:`put_page`: migration moves are resumed
        after crashes, so the same hand-off may arrive twice — a page
        already held is acknowledged (``False``), never an
        ImmutabilityViolation. Write-once discipline is preserved because
        the payload for a given key is immutable cluster-wide.
        """
        self._check_up()
        if key in self._pages:
            return False
        self._pages[key] = payload
        self.bytes_stored += payload.nbytes
        self.puts += 1
        if self.checksum:
            digest = page_checksum(payload)
            if digest is not None:
                self._checksums[key] = digest
        if self._spill is not None:
            self._spill.store(key, payload)
        return True

    def evict_to_spill(self) -> int:
        """Drop in-RAM copies that are safely persisted (needs a spill)."""
        if self._spill is None:
            return 0
        evicted = 0
        for key in list(self._pages):
            payload = self._pages.pop(key)
            self.bytes_stored -= payload.nbytes
            evicted += 1
        return evicted

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def stats(self) -> dict[str, int]:
        return {
            "provider_id": self.provider_id,
            "pages": len(self._pages),
            "bytes": self.bytes_stored,
            "puts": self.puts,
            "gets": self.gets,
        }

    # -- failure injection ---------------------------------------------------

    def crash(self) -> None:
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def _check_up(self) -> None:
        if self.failed:
            raise ProviderUnavailable(f"data provider {self.provider_id} is down")

    # -- RPC dispatch ----------------------------------------------------------

    def handle(self, method: str, args: tuple) -> Any:
        if method == "data.put_page":
            return self.put_page(*args)
        if method == "data.get_page":
            return self.get_page(*args)
        if method == "data.free_pages":
            return self.free_pages(*args)
        if method == "data.list_pages":
            return self.list_pages(*args)
        if method == "data.dump_pages":
            return self.dump_pages(*args)
        if method == "data.stats":
            return self.stats()
        if method == "data.manifest":
            return self.manifest()
        if method == "data.migrate_in":
            return self.migrate_in(*args)
        raise ValueError(f"data provider: unknown method {method!r}")
