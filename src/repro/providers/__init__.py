"""Data plane: page payloads, RAM data providers, and the provider manager.

Pages are the unit of striping (paper §II): fixed-size, immutable, labeled
by the write that created them. Data providers store pages in local memory;
the provider manager tracks the live provider set and allocates one
provider per fresh page of each WRITE under a load-balancing strategy.
"""

from repro.providers.page import PageKey, PagePayload, page_key_for
from repro.providers.data_provider import DataProvider
from repro.providers.manager import ProviderManager
from repro.providers.strategies import (
    AllocationStrategy,
    LeastLoaded,
    RandomK,
    RoundRobin,
    make_strategy,
)

__all__ = [
    "PageKey",
    "PagePayload",
    "page_key_for",
    "DataProvider",
    "ProviderManager",
    "AllocationStrategy",
    "LeastLoaded",
    "RandomK",
    "RoundRobin",
    "make_strategy",
]
