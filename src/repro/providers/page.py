"""Page identity and payloads.

A WRITE stores its pages *before* asking the version manager for a version
number (paper Figure 1), so page identity cannot contain the version.
Instead every write carries a client-generated unique ``write_uid``; a page
is addressed by ``(blob_id, write_uid, page_index)`` and the segment-tree
leaves record the ``write_uid`` + provider, which lets any future version's
READ reconstruct the key. The version label the paper mentions is attached
logically by the leaf that references the page.

Payloads come in two flavours:

- *real*: actual bytes (functional paths: tests, examples, the sky app);
- *virtual*: only a byte count (simulation benches — Figures 3(a-c) measure
  protocol time, not memcpy, and materializing terabytes would be absurd).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.net.message import PAGE_KEY_BYTES, estimate_size


class PageKey(NamedTuple):
    """Globally unique page address."""

    blob_id: str
    write_uid: str
    index: int  # page index within the blob (offset // pagesize)


def page_key_for(blob_id: str, write_uid: str, index: int) -> PageKey:
    if index < 0:
        raise ValueError(f"page index must be >= 0, got {index}")
    return PageKey(blob_id, write_uid, index)


@dataclass(frozen=True, slots=True)
class PagePayload:
    """Contents of one page: real bytes or a virtual placeholder."""

    nbytes: int
    data: bytes | None = None  # None => virtual

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")
        if self.data is not None and len(self.data) != self.nbytes:
            raise ValueError(
                f"payload length {len(self.data)} != declared nbytes {self.nbytes}"
            )

    @classmethod
    def real(cls, data: bytes | bytearray | memoryview) -> "PagePayload":
        b = bytes(data)
        return cls(nbytes=len(b), data=b)

    @classmethod
    def virtual(cls, nbytes: int) -> "PagePayload":
        return cls(nbytes=nbytes, data=None)

    @property
    def is_virtual(self) -> bool:
        return self.data is None

    def as_bytes(self) -> bytes:
        """Materialize contents (virtual payloads read as zeros)."""
        if self.data is None:
            return bytes(self.nbytes)
        return self.data


@estimate_size.register
def _(obj: PagePayload) -> int:
    return PAGE_KEY_BYTES + obj.nbytes


@estimate_size.register
def _(obj: PageKey) -> int:
    return PAGE_KEY_BYTES
