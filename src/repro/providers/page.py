"""Page identity and payloads.

A WRITE stores its pages *before* asking the version manager for a version
number (paper Figure 1), so page identity cannot contain the version.
Instead every write carries a client-generated unique ``write_uid``; a page
is addressed by ``(blob_id, write_uid, page_index)`` and the segment-tree
leaves record the ``write_uid`` + provider, which lets any future version's
READ reconstruct the key. The version label the paper mentions is attached
logically by the leaf that references the page.

Payloads come in two flavours:

- *real*: actual bytes (functional paths: tests, examples, the sky app);
- *virtual*: only a byte count (simulation benches — Figures 3(a-c) measure
  protocol time, not memcpy, and materializing terabytes would be absurd).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.net.message import PAGE_KEY_BYTES, estimate_size


class PageKey(NamedTuple):
    """Globally unique page address."""

    blob_id: str
    write_uid: str
    index: int  # page index within the blob (offset // pagesize)


def page_key_for(blob_id: str, write_uid: str, index: int) -> PageKey:
    if index < 0:
        raise ValueError(f"page index must be >= 0, got {index}")
    return PageKey(blob_id, write_uid, index)


@dataclass(frozen=True, slots=True)
class PagePayload:
    """Contents of one page: real bytes or a virtual placeholder.

    Real contents may be a ``memoryview`` slice of a caller-owned buffer:
    pages are immutable downstream (the provider enforces write-once), so
    splitting a large write into pages never needs to copy — the view is
    carried end to end and only materialized by :meth:`as_bytes`.
    """

    nbytes: int
    data: bytes | memoryview | None = None  # None => virtual

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")
        if self.data is not None and len(self.data) != self.nbytes:
            raise ValueError(
                f"payload length {len(self.data)} != declared nbytes {self.nbytes}"
            )

    @classmethod
    def real(cls, data: bytes | bytearray | memoryview) -> "PagePayload":
        # bytes, and byte-shaped memoryviews over bytes, are kept as-is
        # (zero-copy). Everything else is snapshotted: a mutable source —
        # bytearray, or any view whose *base* is mutable (a read-only view
        # over a bytearray still aliases it) — would let a caller reusing
        # its buffer rewrite already-published pages behind the provider's
        # back, and non-byte-itemsize views would corrupt the length
        # bookkeeping (len() counts elements, not bytes).
        if isinstance(data, memoryview):
            if not (
                data.obj.__class__ is bytes
                and data.ndim == 1
                and data.itemsize == 1
            ):
                data = bytes(data)
        elif isinstance(data, bytearray):
            data = bytes(data)
        return cls(nbytes=len(data), data=data)

    @classmethod
    def virtual(cls, nbytes: int) -> "PagePayload":
        return cls(nbytes=nbytes, data=None)

    @property
    def is_virtual(self) -> bool:
        return self.data is None

    def as_bytes(self) -> bytes:
        """Materialize contents (virtual payloads read as zeros)."""
        if self.data is None:
            return bytes(self.nbytes)
        if type(self.data) is memoryview:
            return bytes(self.data)
        return self.data

    def __reduce__(self):
        """Pickle support for the process-driver wire (see net/codec.py).

        A memoryview-backed payload cannot cross a process boundary as a
        view — the backing buffer lives in the sending process — so it
        materializes to immutable ``bytes`` here, exactly once, at the
        boundary. In-process drivers never pay this copy; the receiving
        side gets a payload that is bit-identical and already in the
        cheapest form (``bytes``) for onward zero-copy reads. Virtual
        payloads travel as their byte count alone.
        """
        data = self.data
        if data is not None and type(data) is memoryview:
            data = bytes(data)
        return (PagePayload, (self.nbytes, data))

    def view(self) -> memoryview | None:
        """Zero-copy view of real contents (``None`` for virtual pages).

        Safe to hand out: :meth:`real` guarantees every stored payload is
        backed by immutable ``bytes`` (mutable sources are snapshotted), so
        a view can alias the page without risking mutation — the same
        write-once argument that makes the paper's lock-free reads safe.
        """
        data = self.data
        if data is None:
            return None
        if type(data) is memoryview:
            return data
        return memoryview(data)


_FLETCHER_MASK = (1 << 64) - 1


def page_checksum(payload: PagePayload) -> int | None:
    """Integrity checksum of a page's contents (``None`` for virtual pages).

    A Fletcher-style double-accumulator over 32-bit words (64-bit sums,
    overflow-free for any legal page size): the running second sum makes
    it *position-sensitive* (a plain word-sum cannot tell two swapped
    blocks apart), which is the property storage checksums need against
    misdirected/torn writes.

    Deliberately implemented as a pure-Python loop (no hashlib/zlib, whose
    C kernels release the GIL): integrity mode models the storage-tier CPU
    real providers burn per page — checksumming, compression, encryption —
    *inside the interpreter*. Under the threaded driver that work
    serializes on the shared GIL no matter how many actor threads exist;
    under the process driver it runs on worker cores. The transport-scaling
    benchmark measures exactly that contrast, so this function's cost is a
    feature: it stands in for the per-byte service work of a real storage
    node, in the only place Python makes the GIL effect visible.
    """
    view = payload.view()
    if view is None:
        return None
    nbytes = view.nbytes
    words = nbytes // 4
    s1 = nbytes * 0x9E3779B1
    s2 = 0
    # classical Fletcher granularity: 32-bit words under 64-bit
    # accumulators (no overflow for any page size this system allows)
    for word in view[: words * 4].cast("I"):
        s1 = (s1 + word) & _FLETCHER_MASK
        s2 = (s2 + s1) & _FLETCHER_MASK
    for byte in view[words * 4 :]:
        s1 = (s1 + byte) & _FLETCHER_MASK
        s2 = (s2 + s1) & _FLETCHER_MASK
    return (s2 << 64) | s1


@estimate_size.register
def _(obj: PagePayload) -> int:
    return PAGE_KEY_BYTES + obj.nbytes


@estimate_size.register
def _(obj: PageKey) -> int:
    return PAGE_KEY_BYTES
