"""Page identity and payloads.

A WRITE stores its pages *before* asking the version manager for a version
number (paper Figure 1), so page identity cannot contain the version.
Instead every write carries a client-generated unique ``write_uid``; a page
is addressed by ``(blob_id, write_uid, page_index)`` and the segment-tree
leaves record the ``write_uid`` + provider, which lets any future version's
READ reconstruct the key. The version label the paper mentions is attached
logically by the leaf that references the page.

Payloads come in two flavours:

- *real*: actual bytes (functional paths: tests, examples, the sky app);
- *virtual*: only a byte count (simulation benches — Figures 3(a-c) measure
  protocol time, not memcpy, and materializing terabytes would be absurd).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.net.message import PAGE_KEY_BYTES, estimate_size


class PageKey(NamedTuple):
    """Globally unique page address."""

    blob_id: str
    write_uid: str
    index: int  # page index within the blob (offset // pagesize)


def page_key_for(blob_id: str, write_uid: str, index: int) -> PageKey:
    if index < 0:
        raise ValueError(f"page index must be >= 0, got {index}")
    return PageKey(blob_id, write_uid, index)


@dataclass(frozen=True, slots=True)
class PagePayload:
    """Contents of one page: real bytes or a virtual placeholder.

    Real contents may be a ``memoryview`` slice of a caller-owned buffer:
    pages are immutable downstream (the provider enforces write-once), so
    splitting a large write into pages never needs to copy — the view is
    carried end to end and only materialized by :meth:`as_bytes`.
    """

    nbytes: int
    data: bytes | memoryview | None = None  # None => virtual

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")
        if self.data is not None and len(self.data) != self.nbytes:
            raise ValueError(
                f"payload length {len(self.data)} != declared nbytes {self.nbytes}"
            )

    @classmethod
    def real(cls, data: bytes | bytearray | memoryview) -> "PagePayload":
        # bytes, and byte-shaped memoryviews over bytes, are kept as-is
        # (zero-copy). Everything else is snapshotted: a mutable source —
        # bytearray, or any view whose *base* is mutable (a read-only view
        # over a bytearray still aliases it) — would let a caller reusing
        # its buffer rewrite already-published pages behind the provider's
        # back, and non-byte-itemsize views would corrupt the length
        # bookkeeping (len() counts elements, not bytes).
        if isinstance(data, memoryview):
            if not (
                data.obj.__class__ is bytes
                and data.ndim == 1
                and data.itemsize == 1
            ):
                data = bytes(data)
        elif isinstance(data, bytearray):
            data = bytes(data)
        return cls(nbytes=len(data), data=data)

    @classmethod
    def virtual(cls, nbytes: int) -> "PagePayload":
        return cls(nbytes=nbytes, data=None)

    @property
    def is_virtual(self) -> bool:
        return self.data is None

    def as_bytes(self) -> bytes:
        """Materialize contents (virtual payloads read as zeros)."""
        if self.data is None:
            return bytes(self.nbytes)
        if type(self.data) is memoryview:
            return bytes(self.data)
        return self.data

    def view(self) -> memoryview | None:
        """Zero-copy view of real contents (``None`` for virtual pages).

        Safe to hand out: :meth:`real` guarantees every stored payload is
        backed by immutable ``bytes`` (mutable sources are snapshotted), so
        a view can alias the page without risking mutation — the same
        write-once argument that makes the paper's lock-free reads safe.
        """
        data = self.data
        if data is None:
            return None
        if type(data) is memoryview:
            return data
        return memoryview(data)


@estimate_size.register
def _(obj: PagePayload) -> int:
    return PAGE_KEY_BYTES + obj.nbytes


@estimate_size.register
def _(obj: PageKey) -> int:
    return PAGE_KEY_BYTES
