"""Provider manager.

Keeps the registry of live data providers (each registers on entering the
system, paper §III.A) and answers each WRITE's allocation request with one
provider per fresh page — or ``replication`` providers per page when page
replication is enabled (our implementation of the paper's future-work fault
tolerance item).

RPC surface:

- ``pm.register(provider_id)`` -> current provider count
- ``pm.deregister(provider_id)`` -> remaining count
- ``pm.get_providers(blob_id, npages, pagesize)`` -> list of provider-id
  groups, ``npages`` entries of ``replication`` ids each
- ``pm.providers()`` -> sorted live provider ids
- ``pm.report_usage(provider_id, bytes)`` -> ack (keeps load view honest)

Elastic membership (PR 7): with a hash-aware strategy
(``strategies.HashRing``), ``pm.get_providers_hashed`` places each page at
its consistent-hash home, so admitting or draining a provider implies a
computable, minimal set of page moves. The pm plans those moves from
provider manifests (``pm.plan_rebalance`` / ``pm.plan_drain``), journals
the plan and every completed move (idempotent, resumable — a pm crash
mid-rebalance recovers the plan from its WAL and the executor finishes
it), tracks moved pages in a relocation table served via ``pm.locate``
(the read path's fallback when a page left its recorded provider), and
keeps draining providers out of fresh allocations until their last
replica is handed off and they deregister.

Durability (PR 6): with a :class:`~repro.core.journal.Journal` attached,
membership and allocation follow the same WAL discipline as the version
manager. Allocation records log only the *inputs* (blob, page count,
pagesize, and the live-provider list the strategy saw); replay re-drives
the strategy, which reproduces the exact placement **and** the strategy's
internal state (round-robin cursor, rng stream) for the next incarnation.
The strategy object itself is pickled into snapshots, and a ``config``
record pins strategy/replication so a restart with different settings
fails loudly (:class:`~repro.errors.ConfigError`) instead of silently
desynchronizing placement. Failure-detector state is deliberately *not*
journaled — health is a property of the running incarnation, so recovered
providers re-enter the tracker fresh.
"""

from __future__ import annotations

import logging
from typing import Any

from repro.errors import ConfigError, NotEnoughProviders
from repro.providers.strategies import AllocationStrategy, RoundRobin

logger = logging.getLogger("repro.pm")


class ProviderManager:
    """Tracks providers and allocates storage targets for fresh pages."""

    def __init__(
        self,
        strategy: AllocationStrategy | None = None,
        replication: int = 1,
        health=None,
        journal=None,
    ) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.strategy = strategy or RoundRobin()
        self.replication = replication
        self.health = health  # optional repro.providers.health.HealthTracker
        self._providers: set[int] = set()
        self._load: dict[int, int] = {}  # allocated bytes per provider
        self.allocations = 0
        # elastic membership: pages whose holders differ from the groups
        # recorded in metadata (moved by a rebalance), the active
        # migration plan, providers being drained, and the plan counter
        self._relocated: dict[tuple, tuple[int, ...]] = {}
        self._migration: dict[str, Any] | None = None
        self._draining: set[int] = set()
        self._plan_seq = 0
        self.journal = journal
        self.replayed_records = 0
        if journal is not None:
            self._recover()

    # -- durability -----------------------------------------------------

    def _config_tuple(self) -> tuple:
        return (
            self.strategy.name or type(self.strategy).__name__,
            self.strategy.params(),
            self.replication,
        )

    def _snapshot_state(self) -> dict[str, Any]:
        return {
            "providers": self._providers,
            "load": self._load,
            "allocations": self.allocations,
            "strategy": self.strategy,
            "config": self._config_tuple(),
            "relocated": self._relocated,
            "migration": self._migration,
            "draining": self._draining,
            "plan_seq": self._plan_seq,
        }

    def _restore(self, state: dict[str, Any]) -> None:
        self._check_config(state["config"], "snapshot")
        self._providers = state["providers"]
        self._load = state["load"]
        self.allocations = state["allocations"]
        self.strategy = state["strategy"]
        # .get: snapshots written before elastic membership lack these
        self._relocated = state.get("relocated", {})
        self._migration = state.get("migration")
        self._draining = state.get("draining", set())
        self._plan_seq = state.get("plan_seq", 0)

    def _check_config(self, recorded: tuple, origin: str) -> None:
        if tuple(recorded) != self._config_tuple():
            raise ConfigError(
                f"pm state dir was written with settings {tuple(recorded)!r} "
                f"but this agent was started with {self._config_tuple()!r} "
                f"({origin}); placement would desynchronize — refusing"
            )

    def _recover(self) -> None:
        state, records = self.journal.open()
        if state is not None:
            self._restore(state)
        for record in records:
            if record[0] == "config":
                self._check_config(record[1], "log")
            else:
                self._apply(record)
        self.replayed_records = len(records)
        if state is None and not records:
            # fresh state dir: pin the settings before anything else
            self.journal.append(("config", self._config_tuple()))
        if self.health is not None:
            for pid in self._providers:
                self.health.register(pid)
        logger.info(
            "pm recovery: %d provider(s), %d log record(s) replayed",
            len(self._providers), len(records),
        )
        self.journal.compact(self._snapshot_state())

    def _log_and_apply(self, record: tuple) -> Any:
        """WAL discipline: append first, apply second, reply third."""
        if self.journal is not None:
            self.journal.append(record)
        result = self._apply(record)
        if self.journal is not None and self.journal.should_compact():
            self.journal.compact(self._snapshot_state())
        return result

    def _apply(self, record: tuple) -> Any:
        op = record[0]
        if op == "register":
            return self._apply_register(*record[1:])
        if op == "deregister":
            return self._apply_deregister(*record[1:])
        if op == "alloc":
            return self._apply_alloc(*record[1:])
        if op == "usage":
            return self._apply_usage(*record[1:])
        if op == "alloch":
            return self._apply_alloch(*record[1:])
        if op == "mig_plan":
            return self._apply_mig_plan(*record[1:])
        if op == "mig_done":
            return self._apply_mig_done(*record[1:])
        if op == "mig_commit":
            return self._apply_mig_commit(*record[1:])
        raise ValueError(f"provider manager: unknown journal record {op!r}")

    def close(self) -> None:
        """Clean shutdown: compact so the next incarnation replays nothing."""
        if self.journal is not None:
            from repro.core.journal import JournalError

            try:
                self.journal.compact(self._snapshot_state())
            except JournalError:
                pass  # a crashed (fault-injected) journal stays as-is
            self.journal.close()

    # -- membership -----------------------------------------------------

    def register(self, provider_id: int) -> int:
        if self.health is not None:
            self.health.register(provider_id)
        return self._log_and_apply(("register", provider_id))

    def _apply_register(self, provider_id: int) -> int:
        self._providers.add(provider_id)
        self._load.setdefault(provider_id, 0)
        return len(self._providers)

    def deregister(self, provider_id: int) -> int:
        if self.health is not None:
            self.health.deregister(provider_id)
        return self._log_and_apply(("deregister", provider_id))

    def _apply_deregister(self, provider_id: int) -> int:
        self._providers.discard(provider_id)
        self._draining.discard(provider_id)
        self._load.pop(provider_id, None)
        return len(self._providers)

    def heartbeat(self, provider_id: int, now: float | None = None) -> str:
        """Record a provider heartbeat (requires a health tracker).

        The beat is credited to the reporting provider *before* the clock
        advances (a beat arriving exactly at the eviction boundary keeps
        membership — the old order churned it through a journaled
        deregister/register cycle); evictions of *other* providers
        implied by the new time are then reconciled and journaled.
        """
        if self.health is None:
            return "untracked"
        if provider_id not in self._providers:
            self.register(provider_id)
        state = self.health.heartbeat(provider_id, now)
        if now is not None:
            members = set(self.health.members())
            for pid in sorted(self._providers - members):
                self._log_and_apply(("deregister", pid))
        return state.value

    def tick(self, now: float) -> list[tuple[int, str]]:
        """Advance the failure detector; evicts DEAD providers.

        Evictions are journaled as deregistrations — a pm restart must
        not resurrect a provider the detector already declared dead.
        """
        if self.health is None:
            return []
        transitions = self.health.advance(now)
        for pid, state in transitions:
            if state.value == "dead" and pid in self._providers:
                self._log_and_apply(("deregister", pid))
        return [(pid, state.value) for pid, state in transitions]

    def providers(self) -> list[int]:
        return sorted(self._providers)

    @property
    def provider_count(self) -> int:
        return len(self._providers)

    # -- allocation ------------------------------------------------------

    def _live_for_allocation(self) -> list[int]:
        """Providers eligible for fresh pages: healthy and not draining."""
        if self.health is not None:
            live = [p for p in self.health.allocatable() if p in self._providers]
        else:
            live = sorted(self._providers)
        return [p for p in live if p not in self._draining]

    def get_providers(
        self, blob_id: str, npages: int, pagesize: int
    ) -> list[tuple[int, ...]]:
        """Choose ``replication`` distinct providers for each fresh page."""
        if npages < 1:
            raise ValueError(f"npages must be >= 1, got {npages}")
        live = self._live_for_allocation()
        if len(live) < self.replication:
            raise NotEnoughProviders(
                f"need {self.replication} providers, have {len(live)}"
            )
        return self._log_and_apply(
            ("alloc", blob_id, npages, pagesize, tuple(live))
        )

    def _apply_alloc(
        self, blob_id: str, npages: int, pagesize: int, live: tuple[int, ...]
    ) -> list[tuple[int, ...]]:
        live = list(live)
        groups: list[tuple[int, ...]] = []
        for _ in range(npages):
            primary = self.strategy.allocate(1, live, self._load)[0]
            chosen = [primary]
            if self.replication > 1:
                # Replicas on the ring successors of the primary: distinct,
                # deterministic, and spread independently of the strategy.
                idx = live.index(primary)
                for step in range(1, self.replication):
                    chosen.append(live[(idx + step) % len(live)])
            for p in chosen:
                self._load[p] = self._load.get(p, 0) + pagesize
            groups.append(tuple(chosen))
        self.allocations += npages
        return groups

    def report_usage(self, provider_id: int, nbytes: int) -> bool:
        """Correct the load view (e.g. after garbage collection freed pages)."""
        if provider_id in self._providers:
            return self._log_and_apply(("usage", provider_id, int(nbytes)))
        return True

    def _apply_usage(self, provider_id: int, nbytes: int) -> bool:
        if provider_id in self._providers:
            self._load[provider_id] = max(0, nbytes)
        return True

    # -- elastic membership: hash placement, rebalance, drain ------------

    def _place_key(self):
        place = getattr(self.strategy, "place_key", None)
        if place is None:
            raise ConfigError(
                f"strategy {self.strategy.name!r} is not hash-aware; elastic "
                "rebalancing requires a key-addressable placement "
                "(strategy 'hash_ring')"
            )
        return place

    def get_providers_hashed(
        self,
        blob_id: str,
        write_uid: str,
        first_page: int,
        npages: int,
        pagesize: int,
    ) -> list[tuple[int, ...]]:
        """Hash-aware allocation: each page at its consistent-hash home.

        Unlike :meth:`get_providers`, placement depends only on the page
        key and the live set — not on allocation order — which is what
        makes membership changes computable as page moves.
        """
        if npages < 1:
            raise ValueError(f"npages must be >= 1, got {npages}")
        self._place_key()  # fail before journaling if not hash-aware
        live = self._live_for_allocation()
        if len(live) < self.replication:
            raise NotEnoughProviders(
                f"need {self.replication} providers, have {len(live)}"
            )
        return self._log_and_apply(
            ("alloch", blob_id, write_uid, first_page, npages, pagesize, tuple(live))
        )

    def _apply_alloch(
        self,
        blob_id: str,
        write_uid: str,
        first_page: int,
        npages: int,
        pagesize: int,
        live: tuple[int, ...],
    ) -> list[tuple[int, ...]]:
        place = self._place_key()
        live = sorted(live)
        groups: list[tuple[int, ...]] = []
        for i in range(npages):
            key = (blob_id, write_uid, first_page + i)
            chosen = place(key, live, self.replication)
            for p in chosen:
                self._load[p] = self._load.get(p, 0) + pagesize
            groups.append(tuple(chosen))
        self.allocations += npages
        return groups

    def locate(self, keys: list) -> list[tuple[int, ...]]:
        """Current holders of pages a rebalance moved; ``()`` = not moved.

        The read path's fallback: when every provider recorded in a tree
        node answers PageMissing, the client asks the pm where the page
        went. Keys are normalized to plain tuples so PageKey objects and
        bare tuples address the same relocation entry.
        """
        return [self._relocated.get(tuple(k), ()) for k in keys]

    def plan_rebalance(
        self, manifests: list, drain: int | None = None
    ) -> dict[str, Any] | None:
        """Plan page moves restoring hash placement over the live set.

        ``manifests`` is ``[(pid, [(key, nbytes), ...]), ...]`` — what
        each provider actually holds. With ``drain`` set, that provider
        is excluded from the target set (and durably marked draining, so
        fresh allocations skip it) and every page it holds moves off.

        Returns the pending-plan view (see :meth:`pending_rebalance`), or
        ``None`` when placement is already consistent and nothing is
        draining. If a plan is already active it is returned as-is — the
        executor must finish and commit it first (this is also the resume
        path after a pm crash mid-rebalance: the recovered plan comes
        back minus the moves whose ``mig_done`` records survived).
        """
        if self._migration is not None:
            return self.pending_rebalance()
        place = self._place_key()
        if drain is not None and drain not in self._providers:
            raise ConfigError(f"cannot drain unknown provider {drain}")
        live = sorted(
            p
            for p in self._providers
            if p not in self._draining and p != drain
        )
        if len(live) < self.replication:
            raise NotEnoughProviders(
                f"draining would leave {len(live)} providers, "
                f"replication needs {self.replication}"
            )
        moves = self._compute_moves(manifests, live, place)
        if not moves and drain is None:
            return None
        plan_id = self._plan_seq + 1
        self._log_and_apply(("mig_plan", plan_id, tuple(moves), drain))
        return self.pending_rebalance()

    def _compute_moves(self, manifests: list, live: list[int], place) -> list:
        """Minimal move list: per key, copies (src kept until the copy
        lands everywhere) then reclaims — the ring's copy-then-reclaim
        order, as journal records. Each move carries the holder tuple
        that is true once it completes, so replaying ``mig_done`` records
        rebuilds the relocation table exactly."""
        holders_by_key: dict[tuple, list[int]] = {}
        nbytes_by_key: dict[tuple, int] = {}
        originals: dict[tuple, Any] = {}
        for pid, entries in manifests:
            for key, nbytes in entries:
                k = tuple(key)
                holders_by_key.setdefault(k, []).append(pid)
                nbytes_by_key[k] = nbytes
                originals[k] = key
        moves: list[tuple] = []
        for k in sorted(holders_by_key):
            holders = sorted(holders_by_key[k])
            desired = list(place(k, live, self.replication))
            to_add = [p for p in desired if p not in holders]
            to_del = [p for p in holders if p not in desired]
            if not to_add and not to_del:
                continue
            key, nbytes = originals[k], nbytes_by_key[k]
            src = next((p for p in holders if p in desired), holders[0])
            current = [p for p in desired if p in holders]
            for dst in to_add:
                current = current + [dst]
                moves.append(
                    ("copy", key, src, dst, nbytes,
                     tuple(p for p in desired if p in current))
                )
            remaining = [p for p in current if p in desired] + to_del
            for pid in to_del:
                remaining = [p for p in remaining if p != pid]
                moves.append(("free", key, pid, None, nbytes, tuple(remaining)))
        return moves

    def _apply_mig_plan(
        self, plan_id: int, moves: tuple, drain: int | None
    ) -> bool:
        self._plan_seq = plan_id
        self._migration = {
            "id": plan_id,
            "moves": list(moves),
            "done": set(),
            "drain": drain,
        }
        if drain is not None:
            self._draining.add(drain)
        return True

    def migration_done(self, plan_id: int, index: int) -> bool:
        """Record one completed move (idempotent — safe to re-report
        after an executor or pm restart; duplicates are not re-journaled)."""
        mig = self._migration
        if mig is None or mig["id"] != plan_id or index in mig["done"]:
            return True
        return self._log_and_apply(("mig_done", plan_id, index))

    def _apply_mig_done(self, plan_id: int, index: int) -> bool:
        mig = self._migration
        if mig is None or mig["id"] != plan_id or index in mig["done"]:
            return True
        kind, key, src, dst, nbytes, holders_after = mig["moves"][index]
        k = tuple(key)
        if kind == "copy":
            self._load[dst] = self._load.get(dst, 0) + nbytes
        else:  # free
            self._load[src] = max(0, self._load.get(src, 0) - nbytes)
        self._relocated[k] = tuple(holders_after)
        mig["done"].add(index)
        return True

    def migration_commit(self, plan_id: int) -> bool:
        """Close the plan once every move is done (idempotent). Draining
        marks persist until the drained provider deregisters."""
        mig = self._migration
        if mig is None or mig["id"] != plan_id:
            return True
        pending = len(mig["moves"]) - len(mig["done"])
        if pending:
            raise ConfigError(
                f"migration plan {plan_id} has {pending} unfinished move(s)"
            )
        return self._log_and_apply(("mig_commit", plan_id))

    def _apply_mig_commit(self, plan_id: int) -> bool:
        if self._migration is not None and self._migration["id"] == plan_id:
            self._migration = None
        return True

    def pending_rebalance(self) -> dict[str, Any] | None:
        """The active migration plan, executor- and operator-readable:
        remaining moves keep their plan indices so ``migration_done``
        reports land on the right record after a resume."""
        mig = self._migration
        if mig is None:
            return None
        return {
            "plan": mig["id"],
            "drain": mig["drain"],
            "total": len(mig["moves"]),
            "done": len(mig["done"]),
            "moves": [
                (i, kind, key, src, dst, nbytes)
                for i, (kind, key, src, dst, nbytes, _after) in enumerate(
                    mig["moves"]
                )
                if i not in mig["done"]
            ],
        }

    def draining(self) -> list[int]:
        return sorted(self._draining)

    def load_view(self) -> dict[int, int]:
        return dict(self._load)

    def config(self) -> dict[str, Any]:
        """Deployment-visible allocation settings.

        Exposed over the wire (``pm.config``) so a cluster builder can
        verify a *remote* pm agent was started with the strategy and
        replication the client's ``DeploymentSpec`` assumes — a silent
        replication mismatch would surface only as data loss at the
        first storage-node failure.
        """
        return {
            "replication": self.replication,
            "strategy": self.strategy.name or type(self.strategy).__name__,
            # effective params (defaults resolved), so a kwargs mismatch
            # that would desynchronize placement is caught too
            "strategy_kwargs": self.strategy.params(),
        }

    # -- RPC dispatch -----------------------------------------------------

    def handle(self, method: str, args: tuple) -> Any:
        if method == "pm.get_providers":
            return self.get_providers(*args)
        if method == "pm.register":
            return self.register(*args)
        if method == "pm.deregister":
            return self.deregister(*args)
        if method == "pm.providers":
            return self.providers()
        if method == "pm.report_usage":
            return self.report_usage(*args)
        if method == "pm.heartbeat":
            return self.heartbeat(*args)
        if method == "pm.tick":
            return self.tick(*args)
        if method == "pm.config":
            return self.config()
        if method == "pm.get_providers_hashed":
            return self.get_providers_hashed(*args)
        if method == "pm.locate":
            return self.locate(*args)
        if method == "pm.plan_rebalance":
            return self.plan_rebalance(*args)
        if method == "pm.migration_done":
            return self.migration_done(*args)
        if method == "pm.migration_commit":
            return self.migration_commit(*args)
        if method == "pm.pending_rebalance":
            return self.pending_rebalance()
        if method == "pm.draining":
            return self.draining()
        raise ValueError(f"provider manager: unknown method {method!r}")
