"""Provider manager.

Keeps the registry of live data providers (each registers on entering the
system, paper §III.A) and answers each WRITE's allocation request with one
provider per fresh page — or ``replication`` providers per page when page
replication is enabled (our implementation of the paper's future-work fault
tolerance item).

RPC surface:

- ``pm.register(provider_id)`` -> current provider count
- ``pm.deregister(provider_id)`` -> remaining count
- ``pm.get_providers(blob_id, npages, pagesize)`` -> list of provider-id
  groups, ``npages`` entries of ``replication`` ids each
- ``pm.providers()`` -> sorted live provider ids
- ``pm.report_usage(provider_id, bytes)`` -> ack (keeps load view honest)
"""

from __future__ import annotations

from typing import Any

from repro.errors import NotEnoughProviders
from repro.providers.strategies import AllocationStrategy, RoundRobin


class ProviderManager:
    """Tracks providers and allocates storage targets for fresh pages."""

    def __init__(
        self,
        strategy: AllocationStrategy | None = None,
        replication: int = 1,
        health=None,
    ) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.strategy = strategy or RoundRobin()
        self.replication = replication
        self.health = health  # optional repro.providers.health.HealthTracker
        self._providers: set[int] = set()
        self._load: dict[int, int] = {}  # allocated bytes per provider
        self.allocations = 0

    # -- membership -----------------------------------------------------

    def register(self, provider_id: int) -> int:
        self._providers.add(provider_id)
        self._load.setdefault(provider_id, 0)
        if self.health is not None:
            self.health.register(provider_id)
        return len(self._providers)

    def deregister(self, provider_id: int) -> int:
        self._providers.discard(provider_id)
        self._load.pop(provider_id, None)
        if self.health is not None:
            self.health.deregister(provider_id)
        return len(self._providers)

    def heartbeat(self, provider_id: int, now: float | None = None) -> str:
        """Record a provider heartbeat (requires a health tracker).

        Passing ``now`` also advances the failure detector first, so
        evictions implied by the new time take effect before the beat.
        """
        if self.health is None:
            return "untracked"
        if now is not None:
            self.tick(now)
        if provider_id not in self._providers:
            self.register(provider_id)
        return self.health.heartbeat(provider_id).value

    def tick(self, now: float) -> list[tuple[int, str]]:
        """Advance the failure detector; evicts DEAD providers."""
        if self.health is None:
            return []
        transitions = self.health.advance(now)
        for pid, state in transitions:
            if state.value == "dead":
                self._providers.discard(pid)
                self._load.pop(pid, None)
        return [(pid, state.value) for pid, state in transitions]

    def providers(self) -> list[int]:
        return sorted(self._providers)

    @property
    def provider_count(self) -> int:
        return len(self._providers)

    # -- allocation ------------------------------------------------------

    def get_providers(
        self, blob_id: str, npages: int, pagesize: int
    ) -> list[tuple[int, ...]]:
        """Choose ``replication`` distinct providers for each fresh page."""
        if npages < 1:
            raise ValueError(f"npages must be >= 1, got {npages}")
        if self.health is not None:
            live = [p for p in self.health.allocatable() if p in self._providers]
        else:
            live = sorted(self._providers)
        if len(live) < self.replication:
            raise NotEnoughProviders(
                f"need {self.replication} providers, have {len(live)}"
            )
        groups: list[tuple[int, ...]] = []
        for _ in range(npages):
            primary = self.strategy.allocate(1, live, self._load)[0]
            chosen = [primary]
            if self.replication > 1:
                # Replicas on the ring successors of the primary: distinct,
                # deterministic, and spread independently of the strategy.
                idx = live.index(primary)
                for step in range(1, self.replication):
                    chosen.append(live[(idx + step) % len(live)])
            for p in chosen:
                self._load[p] = self._load.get(p, 0) + pagesize
            groups.append(tuple(chosen))
        self.allocations += npages
        return groups

    def report_usage(self, provider_id: int, nbytes: int) -> bool:
        """Correct the load view (e.g. after garbage collection freed pages)."""
        if provider_id in self._providers:
            self._load[provider_id] = max(0, int(nbytes))
        return True

    def load_view(self) -> dict[int, int]:
        return dict(self._load)

    def config(self) -> dict[str, Any]:
        """Deployment-visible allocation settings.

        Exposed over the wire (``pm.config``) so a cluster builder can
        verify a *remote* pm agent was started with the strategy and
        replication the client's ``DeploymentSpec`` assumes — a silent
        replication mismatch would surface only as data loss at the
        first storage-node failure.
        """
        return {
            "replication": self.replication,
            "strategy": self.strategy.name or type(self.strategy).__name__,
            # effective params (defaults resolved), so a kwargs mismatch
            # that would desynchronize placement is caught too
            "strategy_kwargs": self.strategy.params(),
        }

    # -- RPC dispatch -----------------------------------------------------

    def handle(self, method: str, args: tuple) -> Any:
        if method == "pm.get_providers":
            return self.get_providers(*args)
        if method == "pm.register":
            return self.register(*args)
        if method == "pm.deregister":
            return self.deregister(*args)
        if method == "pm.providers":
            return self.providers()
        if method == "pm.report_usage":
            return self.report_usage(*args)
        if method == "pm.heartbeat":
            return self.heartbeat(*args)
        if method == "pm.tick":
            return self.tick(*args)
        if method == "pm.config":
            return self.config()
        raise ValueError(f"provider manager: unknown method {method!r}")
