"""Provider manager.

Keeps the registry of live data providers (each registers on entering the
system, paper §III.A) and answers each WRITE's allocation request with one
provider per fresh page — or ``replication`` providers per page when page
replication is enabled (our implementation of the paper's future-work fault
tolerance item).

RPC surface:

- ``pm.register(provider_id)`` -> current provider count
- ``pm.deregister(provider_id)`` -> remaining count
- ``pm.get_providers(blob_id, npages, pagesize)`` -> list of provider-id
  groups, ``npages`` entries of ``replication`` ids each
- ``pm.providers()`` -> sorted live provider ids
- ``pm.report_usage(provider_id, bytes)`` -> ack (keeps load view honest)

Durability (PR 6): with a :class:`~repro.core.journal.Journal` attached,
membership and allocation follow the same WAL discipline as the version
manager. Allocation records log only the *inputs* (blob, page count,
pagesize, and the live-provider list the strategy saw); replay re-drives
the strategy, which reproduces the exact placement **and** the strategy's
internal state (round-robin cursor, rng stream) for the next incarnation.
The strategy object itself is pickled into snapshots, and a ``config``
record pins strategy/replication so a restart with different settings
fails loudly (:class:`~repro.errors.ConfigError`) instead of silently
desynchronizing placement. Failure-detector state is deliberately *not*
journaled — health is a property of the running incarnation, so recovered
providers re-enter the tracker fresh.
"""

from __future__ import annotations

import logging
from typing import Any

from repro.errors import ConfigError, NotEnoughProviders
from repro.providers.strategies import AllocationStrategy, RoundRobin

logger = logging.getLogger("repro.pm")


class ProviderManager:
    """Tracks providers and allocates storage targets for fresh pages."""

    def __init__(
        self,
        strategy: AllocationStrategy | None = None,
        replication: int = 1,
        health=None,
        journal=None,
    ) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.strategy = strategy or RoundRobin()
        self.replication = replication
        self.health = health  # optional repro.providers.health.HealthTracker
        self._providers: set[int] = set()
        self._load: dict[int, int] = {}  # allocated bytes per provider
        self.allocations = 0
        self.journal = journal
        self.replayed_records = 0
        if journal is not None:
            self._recover()

    # -- durability -----------------------------------------------------

    def _config_tuple(self) -> tuple:
        return (
            self.strategy.name or type(self.strategy).__name__,
            self.strategy.params(),
            self.replication,
        )

    def _snapshot_state(self) -> dict[str, Any]:
        return {
            "providers": self._providers,
            "load": self._load,
            "allocations": self.allocations,
            "strategy": self.strategy,
            "config": self._config_tuple(),
        }

    def _restore(self, state: dict[str, Any]) -> None:
        self._check_config(state["config"], "snapshot")
        self._providers = state["providers"]
        self._load = state["load"]
        self.allocations = state["allocations"]
        self.strategy = state["strategy"]

    def _check_config(self, recorded: tuple, origin: str) -> None:
        if tuple(recorded) != self._config_tuple():
            raise ConfigError(
                f"pm state dir was written with settings {tuple(recorded)!r} "
                f"but this agent was started with {self._config_tuple()!r} "
                f"({origin}); placement would desynchronize — refusing"
            )

    def _recover(self) -> None:
        state, records = self.journal.open()
        if state is not None:
            self._restore(state)
        for record in records:
            if record[0] == "config":
                self._check_config(record[1], "log")
            else:
                self._apply(record)
        self.replayed_records = len(records)
        if state is None and not records:
            # fresh state dir: pin the settings before anything else
            self.journal.append(("config", self._config_tuple()))
        if self.health is not None:
            for pid in self._providers:
                self.health.register(pid)
        logger.info(
            "pm recovery: %d provider(s), %d log record(s) replayed",
            len(self._providers), len(records),
        )
        self.journal.compact(self._snapshot_state())

    def _log_and_apply(self, record: tuple) -> Any:
        """WAL discipline: append first, apply second, reply third."""
        if self.journal is not None:
            self.journal.append(record)
        result = self._apply(record)
        if self.journal is not None and self.journal.should_compact():
            self.journal.compact(self._snapshot_state())
        return result

    def _apply(self, record: tuple) -> Any:
        op = record[0]
        if op == "register":
            return self._apply_register(*record[1:])
        if op == "deregister":
            return self._apply_deregister(*record[1:])
        if op == "alloc":
            return self._apply_alloc(*record[1:])
        if op == "usage":
            return self._apply_usage(*record[1:])
        raise ValueError(f"provider manager: unknown journal record {op!r}")

    def close(self) -> None:
        """Clean shutdown: compact so the next incarnation replays nothing."""
        if self.journal is not None:
            from repro.core.journal import JournalError

            try:
                self.journal.compact(self._snapshot_state())
            except JournalError:
                pass  # a crashed (fault-injected) journal stays as-is
            self.journal.close()

    # -- membership -----------------------------------------------------

    def register(self, provider_id: int) -> int:
        if self.health is not None:
            self.health.register(provider_id)
        return self._log_and_apply(("register", provider_id))

    def _apply_register(self, provider_id: int) -> int:
        self._providers.add(provider_id)
        self._load.setdefault(provider_id, 0)
        return len(self._providers)

    def deregister(self, provider_id: int) -> int:
        if self.health is not None:
            self.health.deregister(provider_id)
        return self._log_and_apply(("deregister", provider_id))

    def _apply_deregister(self, provider_id: int) -> int:
        self._providers.discard(provider_id)
        self._load.pop(provider_id, None)
        return len(self._providers)

    def heartbeat(self, provider_id: int, now: float | None = None) -> str:
        """Record a provider heartbeat (requires a health tracker).

        Passing ``now`` also advances the failure detector first, so
        evictions implied by the new time take effect before the beat.
        """
        if self.health is None:
            return "untracked"
        if now is not None:
            self.tick(now)
        if provider_id not in self._providers:
            self.register(provider_id)
        return self.health.heartbeat(provider_id).value

    def tick(self, now: float) -> list[tuple[int, str]]:
        """Advance the failure detector; evicts DEAD providers.

        Evictions are journaled as deregistrations — a pm restart must
        not resurrect a provider the detector already declared dead.
        """
        if self.health is None:
            return []
        transitions = self.health.advance(now)
        for pid, state in transitions:
            if state.value == "dead" and pid in self._providers:
                self._log_and_apply(("deregister", pid))
        return [(pid, state.value) for pid, state in transitions]

    def providers(self) -> list[int]:
        return sorted(self._providers)

    @property
    def provider_count(self) -> int:
        return len(self._providers)

    # -- allocation ------------------------------------------------------

    def get_providers(
        self, blob_id: str, npages: int, pagesize: int
    ) -> list[tuple[int, ...]]:
        """Choose ``replication`` distinct providers for each fresh page."""
        if npages < 1:
            raise ValueError(f"npages must be >= 1, got {npages}")
        if self.health is not None:
            live = [p for p in self.health.allocatable() if p in self._providers]
        else:
            live = sorted(self._providers)
        if len(live) < self.replication:
            raise NotEnoughProviders(
                f"need {self.replication} providers, have {len(live)}"
            )
        return self._log_and_apply(
            ("alloc", blob_id, npages, pagesize, tuple(live))
        )

    def _apply_alloc(
        self, blob_id: str, npages: int, pagesize: int, live: tuple[int, ...]
    ) -> list[tuple[int, ...]]:
        live = list(live)
        groups: list[tuple[int, ...]] = []
        for _ in range(npages):
            primary = self.strategy.allocate(1, live, self._load)[0]
            chosen = [primary]
            if self.replication > 1:
                # Replicas on the ring successors of the primary: distinct,
                # deterministic, and spread independently of the strategy.
                idx = live.index(primary)
                for step in range(1, self.replication):
                    chosen.append(live[(idx + step) % len(live)])
            for p in chosen:
                self._load[p] = self._load.get(p, 0) + pagesize
            groups.append(tuple(chosen))
        self.allocations += npages
        return groups

    def report_usage(self, provider_id: int, nbytes: int) -> bool:
        """Correct the load view (e.g. after garbage collection freed pages)."""
        if provider_id in self._providers:
            return self._log_and_apply(("usage", provider_id, int(nbytes)))
        return True

    def _apply_usage(self, provider_id: int, nbytes: int) -> bool:
        if provider_id in self._providers:
            self._load[provider_id] = max(0, nbytes)
        return True

    def load_view(self) -> dict[int, int]:
        return dict(self._load)

    def config(self) -> dict[str, Any]:
        """Deployment-visible allocation settings.

        Exposed over the wire (``pm.config``) so a cluster builder can
        verify a *remote* pm agent was started with the strategy and
        replication the client's ``DeploymentSpec`` assumes — a silent
        replication mismatch would surface only as data loss at the
        first storage-node failure.
        """
        return {
            "replication": self.replication,
            "strategy": self.strategy.name or type(self.strategy).__name__,
            # effective params (defaults resolved), so a kwargs mismatch
            # that would desynchronize placement is caught too
            "strategy_kwargs": self.strategy.params(),
        }

    # -- RPC dispatch -----------------------------------------------------

    def handle(self, method: str, args: tuple) -> Any:
        if method == "pm.get_providers":
            return self.get_providers(*args)
        if method == "pm.register":
            return self.register(*args)
        if method == "pm.deregister":
            return self.deregister(*args)
        if method == "pm.providers":
            return self.providers()
        if method == "pm.report_usage":
            return self.report_usage(*args)
        if method == "pm.heartbeat":
            return self.heartbeat(*args)
        if method == "pm.tick":
            return self.tick(*args)
        if method == "pm.config":
            return self.config()
        raise ValueError(f"provider manager: unknown method {method!r}")
