"""Elastic rebalance executor: drive pm-planned page moves to completion.

The provider manager *plans* migrations (``pm.plan_rebalance``) and
journals every completed move; this module is the *executor* that carries
pages between providers. It speaks only through a driver's RPC surface
(one mini-protocol per call), so the same code rebalances an in-process
deployment, a threaded one, or a live TCP cluster — and it respects actor
confinement (it never touches provider objects directly).

Execution is idempotent and resumable by construction:

- a ``copy`` re-sent after a crash lands on ``data.migrate_in``, which
  acknowledges pages it already holds instead of raising;
- a ``copy`` whose source page vanished (the source freed it just before
  a crash, after the copy landed) verifies the destination holds the page
  and reports the move done;
- ``free`` uses ``data.free_pages``, idempotent on missing keys;
- every completed move is reported to the pm (``pm.migration_done``,
  itself idempotent and WAL-journaled) *before* the next move starts, so
  a pm recovered from SIGKILL mid-rebalance hands back exactly the moves
  whose completion records did not survive.

``limit_moves`` exists for fault-injection tests: execute a prefix of the
plan, crash something, resume.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PageMissing
from repro.net.sansio import Batch, Call


def _rpc(driver, address, method: str, args: tuple = ()):  # noqa: ANN001
    def proto():
        (result,) = yield Batch([Call(address, method, args)])
        return result

    return driver.run(proto())


def collect_manifests(driver, provider_ids) -> list:
    """``[(pid, [(key, nbytes), ...]), ...]`` from every provider."""
    return [
        (pid, _rpc(driver, ("data", pid), "data.manifest"))
        for pid in sorted(provider_ids)
    ]


def _execute_move(driver, kind: str, key, src: int, dst: int | None) -> None:
    if kind == "copy":
        try:
            payload = _rpc(driver, ("data", src), "data.get_page", (key,))
        except PageMissing:
            # Resume path: the copy landed before the crash and the source
            # was since reclaimed — verify the destination holds the page.
            _rpc(driver, ("data", dst), "data.get_page", (key,))
            return
        _rpc(driver, ("data", dst), "data.migrate_in", (key, payload))
    else:  # free
        _rpc(driver, ("data", src), "data.free_pages", ([key],))


def execute_rebalance(
    driver,
    provider_ids,
    *,
    drain: int | None = None,
    limit_moves: int | None = None,
) -> dict[str, Any]:
    """Plan (or resume) a rebalance and drive its moves in plan order.

    Returns ``{"plan", "executed", "remaining", "committed", "drain"}``.
    With ``drain`` set the target provider is excluded from placement and
    emptied (the caller deregisters it once ``committed`` is true); with
    ``limit_moves`` execution stops early and ``committed`` stays false —
    calling again resumes from the pm's journaled plan.
    """
    plan = _rpc(driver, "pm", "pm.pending_rebalance")
    if plan is None:
        manifests = collect_manifests(driver, provider_ids)
        plan = _rpc(driver, "pm", "pm.plan_rebalance", (manifests, drain))
    if plan is None:
        return {
            "plan": None, "executed": 0, "remaining": 0,
            "committed": True, "drain": drain,
        }
    executed = 0
    moves = plan["moves"]
    for n, (index, kind, key, src, dst, _nbytes) in enumerate(moves):
        if limit_moves is not None and executed >= limit_moves:
            return {
                "plan": plan["plan"], "executed": executed,
                "remaining": len(moves) - n, "committed": False,
                "drain": plan["drain"],
            }
        _execute_move(driver, kind, key, src, dst)
        _rpc(driver, "pm", "pm.migration_done", (plan["plan"], index))
        executed += 1
    _rpc(driver, "pm", "pm.migration_commit", (plan["plan"],))
    return {
        "plan": plan["plan"], "executed": executed, "remaining": 0,
        "committed": True, "drain": plan["drain"],
    }


def drain_provider(
    driver,
    provider_ids,
    provider_id: int,
    *,
    limit_moves: int | None = None,
) -> dict[str, Any]:
    """Empty one provider and deregister it once its last page moved.

    ``provider_ids`` must include the draining provider (its manifest is
    what gets moved). Deregistration happens only after the plan commits,
    so an interrupted drain resumes instead of losing membership early.
    """
    summary = execute_rebalance(
        driver, provider_ids, drain=provider_id, limit_moves=limit_moves
    )
    if summary["committed"]:
        _rpc(driver, "pm", "pm.deregister", (provider_id,))
    return summary
