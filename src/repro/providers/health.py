"""Provider health tracking: heartbeats and failure suspicion.

The paper lists fault tolerance of the management entities as future work
(§VI); this module implements the provider-side half the provider manager
needs today: providers heartbeat, the manager suspects any provider silent
for ``timeout`` time units and excludes it from new-page allocation (data
already stored stays readable through replicas; see ``tests/test_faults``).

Time is an explicit logical clock (``tick``), so the policy is fully
deterministic under test and equally usable from the simulated or the
threaded deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class HealthState(str, Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class _ProviderHealth:
    last_heartbeat: float
    state: HealthState = HealthState.ALIVE
    suspected_at: float | None = None


@dataclass
class HealthTracker:
    """Heartbeat bookkeeping with a two-stage suspicion policy.

    A provider silent for ``suspect_after`` becomes SUSPECT (excluded from
    allocation, still counted as a member); silent for ``evict_after`` it
    becomes DEAD (removed from membership). Any heartbeat fully revives it.
    """

    suspect_after: float = 3.0
    evict_after: float = 10.0
    _providers: dict[int, _ProviderHealth] = field(default_factory=dict)
    now: float = 0.0

    def __post_init__(self) -> None:
        if self.suspect_after <= 0 or self.evict_after <= self.suspect_after:
            raise ValueError(
                "need 0 < suspect_after < evict_after, got "
                f"{self.suspect_after} / {self.evict_after}"
            )

    # -- inputs -----------------------------------------------------------

    def register(self, provider_id: int) -> None:
        self._providers[provider_id] = _ProviderHealth(last_heartbeat=self.now)

    def deregister(self, provider_id: int) -> None:
        self._providers.pop(provider_id, None)

    def heartbeat(self, provider_id: int, now: float | None = None) -> HealthState:
        """Record a heartbeat; unknown providers (re)register implicitly.

        The beat is credited to the reporting provider *before* the clock
        advances: a provider reporting exactly at the ``evict_after``
        boundary stays a member (the old order evicted it first — a
        journaled deregistration — then silently re-registered it fresh).
        """
        entry = self._providers.get(provider_id)
        if entry is not None:
            entry.last_heartbeat = max(self.now, now if now is not None else self.now)
            entry.state = HealthState.ALIVE
            entry.suspected_at = None
        if now is not None:
            self.advance(now)
        if provider_id not in self._providers:
            self.register(provider_id)
        return HealthState.ALIVE

    def advance(self, now: float) -> list[tuple[int, HealthState]]:
        """Move the clock forward; returns state transitions it caused.

        Eviction requires both total silence ≥ ``evict_after`` and a
        minimum SUSPECT dwell of ``evict_after - suspect_after``: one
        large clock step marks a silent provider SUSPECT but cannot jump
        it straight to DEAD, so the grace window is always observed.
        """
        if now < self.now:
            raise ValueError(f"clock moved backwards: {now} < {self.now}")
        self.now = now
        dwell = self.evict_after - self.suspect_after
        transitions: list[tuple[int, HealthState]] = []
        for pid, entry in list(self._providers.items()):
            silent = self.now - entry.last_heartbeat
            if entry.state == HealthState.ALIVE and silent >= self.suspect_after:
                entry.state = HealthState.SUSPECT
                entry.suspected_at = self.now
                transitions.append((pid, HealthState.SUSPECT))
            if (
                entry.state == HealthState.SUSPECT
                and silent >= self.evict_after
                and entry.suspected_at is not None
                and self.now - entry.suspected_at >= dwell
            ):
                entry.state = HealthState.DEAD
                transitions.append((pid, HealthState.DEAD))
                del self._providers[pid]
        return transitions

    # -- views ------------------------------------------------------------

    def state_of(self, provider_id: int) -> HealthState:
        entry = self._providers.get(provider_id)
        return entry.state if entry is not None else HealthState.DEAD

    def allocatable(self) -> list[int]:
        """Providers eligible for fresh pages: ALIVE only."""
        return sorted(
            pid
            for pid, entry in self._providers.items()
            if entry.state == HealthState.ALIVE
        )

    def members(self) -> list[int]:
        return sorted(self._providers)

    def summary(self) -> dict[str, int]:
        states = [e.state for e in self._providers.values()]
        return {
            "alive": sum(1 for s in states if s == HealthState.ALIVE),
            "suspect": sum(1 for s in states if s == HealthState.SUSPECT),
            "members": len(states),
        }
