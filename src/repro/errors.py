"""Exception taxonomy for the whole system.

Every error a client can observe derives from :class:`ReproError`, so
applications (and the supernova pipeline) can catch one base class. Remote
failures cross the RPC boundary as :class:`RemoteError` wrapping the
original exception's type name and message.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid blob geometry or deployment configuration."""


class BlobNotFound(ReproError):
    """Operation on an id that was never allocated."""


class VersionNotPublished(ReproError):
    """READ requested a version newer than the latest published snapshot.

    Mirrors the paper's specification: "If v has not yet been published,
    then the read fails."
    """

    def __init__(self, blob_id: str, requested: int, latest: int) -> None:
        super().__init__(
            f"version {requested} of blob {blob_id} not published "
            f"(latest published: {latest})"
        )
        self.blob_id = blob_id
        self.requested = requested
        self.latest = latest

    def __reduce__(self):
        # Default exception pickling replays __init__ with self.args (the
        # formatted message), which does not match this signature; errors
        # must survive the process-driver wire, so rebuild from the fields.
        return (VersionNotPublished, (self.blob_id, self.requested, self.latest))


class OutOfBounds(ReproError):
    """Access past the end of the blob's fixed logical size."""


class ImmutabilityViolation(ReproError):
    """Attempt to overwrite an existing page or metadata node.

    Pages and tree nodes are write-once by design; an overwrite attempt
    indicates a protocol bug, never a legal operation.
    """


class PageMissing(ReproError):
    """A data provider was asked for a page it does not hold."""


class PageCorrupt(ReproError):
    """A stored page failed its integrity checksum on read."""


class NodeMissing(ReproError):
    """A metadata provider was asked for a tree node it does not hold."""


class ProviderUnavailable(ReproError):
    """A provider is down (failure injection or simulated crash)."""


class NotEnoughProviders(ReproError):
    """The provider manager cannot satisfy an allocation request."""


class StaleWrite(ReproError):
    """A writer reported completion for an unknown or finished version."""


class RemoteError(ReproError):
    """An exception raised by a remote handler, carried over RPC.

    Carries the original exception so drivers can re-raise *semantic*
    errors (``ReproError`` subclasses such as :class:`VersionNotPublished`)
    with their precise type at the protocol's yield point, while
    infrastructure failures stay wrapped.
    """

    def __init__(
        self,
        error_type: str,
        message: str,
        original: BaseException | None = None,
    ) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message
        self.original = original

    @classmethod
    def wrap(cls, exc: BaseException) -> "RemoteError":
        if isinstance(exc, RemoteError):
            return exc
        return cls(type(exc).__name__, str(exc), original=exc)

    def unwrap(self) -> BaseException:
        """The exception to raise client-side: typed when semantic."""
        if isinstance(self.original, ReproError):
            return self.original
        return self

    def __reduce__(self):
        # Same signature problem as VersionNotPublished, plus the wrapped
        # original may itself be unpicklable (it can carry arbitrary
        # handler state): probe it and ship ``None`` in its place — the
        # error type name and message always cross the wire intact.
        original = self.original
        if original is not None:
            import pickle

            try:
                pickle.loads(pickle.dumps(original))
            except Exception:
                original = None
        return (RemoteError, (self.error_type, self.message, original))


class GCInProgress(ReproError):
    """A second garbage collection was ordered while one is running."""
