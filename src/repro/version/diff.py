"""Snapshot differencing: which byte ranges changed between two versions?

A direct payoff of version-labeled child references (paper §III.C): two
snapshots' trees share every subtree that no intervening patch touched, and
the child reference *is* the version label — so comparing references
prunes identical subtrees without fetching them. The walk costs
O(changed metadata), not O(blob size).

Semantics: a range is reported iff some patch in ``(v_old, v_new]``
intersects it — i.e. the resolved writer version of the range differs
between the snapshots. (A write of identical bytes still reports: this is
structural diff, the one applications want for incremental reprocessing.)

``diff_protocol`` is sans-io like every other protocol; ``changed_ranges``
is the blocking client helper.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import VersionNotPublished
from repro.metadata.cache import MetadataCache
from repro.metadata.node import NodeKey, TreeNode
from repro.metadata.router import StaticRouter
from repro.metadata.tree import TreeGeometry
from repro.net.sansio import Batch, Call, Op
from repro.util.intervals import Interval

Proto = Generator[Op, Any, Any]


def diff_protocol(
    blob_id: str,
    geom: TreeGeometry,
    v_old: int,
    v_new: int,
    router: StaticRouter,
    cache: MetadataCache | None = None,
) -> Proto:
    """Sans-io diff; returns a merged list of changed :class:`Interval`.

    Both versions must be published. ``v_old`` may exceed ``v_new``; the
    result is symmetric, so the arguments are normalized.
    """
    if v_old > v_new:
        v_old, v_new = v_new, v_old
    (resolved,) = yield Batch([Call("vm", "vm.resolve_read", (blob_id, v_new))])
    effective, _latest = resolved
    if effective != v_new:  # defensive; resolve_read raises on unpublished
        raise VersionNotPublished(blob_id, v_new, effective)
    if v_old == v_new:
        return []

    changed: list[Interval] = []
    # frontier entries: (interval, old_ref, new_ref) with old_ref != new_ref
    frontier: list[tuple[Interval, int, int]] = []
    root = geom.root
    # Resolved root references: the root node of snapshot v exists for
    # every v >= 1; v == 0 is the implicit zero tree (reference 0).
    frontier.append((root, v_old, v_new))

    while frontier:
        # fetch the internal nodes we must expand (both sides, deduped)
        need: dict[NodeKey, TreeNode | None] = {}
        for iv, old_ref, new_ref in frontier:
            if geom.is_leaf(iv):
                continue
            for ref in (old_ref, new_ref):
                if ref > 0:
                    need.setdefault(NodeKey(blob_id, ref, iv.offset, iv.size))
        keys = list(need)
        fetched: dict[NodeKey, TreeNode] = {}
        to_fetch: list[NodeKey] = []
        for key in keys:
            node = cache.get(key) if cache is not None else None
            if node is not None:
                fetched[key] = node
            else:
                to_fetch.append(key)
        if to_fetch:
            results = yield Batch(
                [Call(router.route(k)[0], "meta.get_node", (k,)) for k in to_fetch]
            )
            for key, node in zip(to_fetch, results):
                fetched[key] = node
                if cache is not None:
                    cache.put(node)

        next_frontier: list[tuple[Interval, int, int]] = []
        for iv, old_ref, new_ref in frontier:
            assert old_ref != new_ref
            if geom.is_leaf(iv):
                changed.append(iv)
                continue
            old_children = _child_refs(fetched, blob_id, iv, old_ref)
            new_children = _child_refs(fetched, blob_id, iv, new_ref)
            for (child_iv, a), (_, b) in zip(old_children, new_children):
                if a != b:
                    next_frontier.append((child_iv, a, b))
        frontier = next_frontier

    return merge_intervals(changed)


def _child_refs(
    fetched: dict[NodeKey, TreeNode],
    blob_id: str,
    iv: Interval,
    ref: int,
) -> list[tuple[Interval, int]]:
    """Child (interval, version-reference) pairs for one side of the walk.

    Reference 0 is the implicit zero tree: both children are reference 0.
    """
    left, right = iv.left_half(), iv.right_half()
    if ref == 0:
        return [(left, 0), (right, 0)]
    node = fetched[NodeKey(blob_id, ref, iv.offset, iv.size)]
    assert node.left_version is not None and node.right_version is not None
    return [(left, node.left_version), (right, node.right_version)]


def merge_intervals(parts: list[Interval]) -> list[Interval]:
    """Coalesce adjacent/overlapping intervals into maximal runs."""
    if not parts:
        return []
    parts = sorted(parts, key=lambda iv: iv.offset)
    out = [parts[0]]
    for iv in parts[1:]:
        last = out[-1]
        if iv.offset <= last.end:
            if iv.end > last.end:
                out[-1] = Interval(last.offset, iv.end - last.offset)
        else:
            out.append(iv)
    return out


def changed_ranges(
    client,
    blob_id: str,
    v_old: int,
    v_new: int,
) -> list[Interval]:
    """Blocking helper on a :class:`~repro.core.client.BlobClient`."""
    geom = client.open(blob_id)
    return client.driver.run(
        diff_protocol(
            blob_id, geom, v_old, v_new, client.router, cache=client.cache
        )
    )
