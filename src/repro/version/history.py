"""Patch history: the version manager's view of who wrote what.

For border-reference precomputation the version manager must answer, for
any canonical interval ``I`` and version ``v``: *which is the most recent
version ≤ v whose patch intersects ``I``?* — because that version's tree
contains the node describing ``I``'s state at snapshot ``v`` (no later
patch touched it, so the state is unchanged since then).

The answer is maintained as a sparse "latest-writer" map over canonical
intervals: recording version ``v`` with patch ``P`` stamps ``v`` onto every
canonical interval intersecting ``P`` — exactly the node set of ``v``'s
metadata subtree, so the bookkeeping cost matches the write's own metadata
cost (a constant factor on the assign path, the "slight computation
overhead on the side of the versioning manager" the paper mentions).

Because versions are assigned in increasing order, stamping is a plain
overwrite and the map always holds the maximum.
"""

from __future__ import annotations

from repro.metadata.build import border_intervals
from repro.metadata.tree import TreeGeometry
from repro.util.intervals import Interval

#: memoized visit-interval lists keyed by (total_size, pagesize, offset, size)
#: — the canonical cover of a patch is pure geometry, and workloads stamp
#: the same patch slots over and over; cleared wholesale on overflow so
#: long-lived processes writing many distinct shapes don't leak
_VISIT_CACHE_LIMIT = 4096
_visit_cache: dict[tuple[int, int, int, int], list[Interval]] = {}


class PatchHistory:
    """Sparse latest-writer index over canonical intervals of one blob."""

    def __init__(self, geom: TreeGeometry) -> None:
        self.geom = geom
        self._latest: dict[Interval, int] = {}
        self.patches: list[tuple[int, Interval]] = []  # (version, patch)
        self._undo: dict[int, list[tuple[Interval, int]]] = {}  # for abandon()

    def __len__(self) -> int:
        return len(self._latest)

    def latest(self, iv: Interval) -> int:
        """Most recent version whose patch intersects ``iv`` (0 = never)."""
        return self._latest.get(iv, 0)

    def record(self, version: int, patch: Interval) -> None:
        """Stamp ``version`` onto every canonical interval its tree covers."""
        if self.patches and version <= self.patches[-1][0]:
            raise ValueError(
                f"versions must be recorded in increasing order; got {version} "
                f"after {self.patches[-1][0]}"
            )
        patch = self.geom.check_aligned(patch.offset, patch.size)
        geom = self.geom
        cache_key = (geom.total_size, geom.pagesize, patch.offset, patch.size)
        intervals = _visit_cache.get(cache_key)
        if intervals is None:
            if len(_visit_cache) >= _VISIT_CACHE_LIMIT:
                _visit_cache.clear()
            intervals = list(geom.visit_intervals(patch))
            _visit_cache[cache_key] = intervals
        latest = self._latest
        latest_get = latest.get
        undo: list[tuple[Interval, int]] = []
        for iv in intervals:
            undo.append((iv, latest_get(iv, 0)))
            latest[iv] = version
        self.patches.append((version, patch))
        self._undo[version] = undo

    def forget_undo(self, version: int) -> None:
        """Drop rollback state once a write completes (bounded memory)."""
        self._undo.pop(version, None)

    def rollback_last(self, version: int) -> None:
        """Undo the most recent record (abandoned write, see VM.abandon)."""
        if not self.patches or self.patches[-1][0] != version:
            raise ValueError(
                f"can only roll back the most recently recorded version; "
                f"{version} is not it"
            )
        undo = self._undo.pop(version)
        for iv, prev in undo:
            if prev == 0:
                self._latest.pop(iv, None)
            else:
                self._latest[iv] = prev
        self.patches.pop()

    def border_refs(self, patch: Interval) -> dict[Interval, int]:
        """References for a write of ``patch`` assigned *next*.

        Must be called **before** :meth:`record` for that write: each border
        interval maps to the latest already-recorded version intersecting it
        (0 if untouched, meaning zero-fill).
        """
        return {iv: self.latest(iv) for iv in border_intervals(self.geom, patch)}

    def versions_intersecting(self, iv: Interval) -> list[int]:
        """All recorded versions whose patch intersects ``iv`` (for tools)."""
        return [v for v, p in self.patches if p.intersects(iv)]
