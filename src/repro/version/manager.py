"""The version manager.

Responsibilities (paper §III.A, §IV):

- ``alloc``: mint blob ids and record their geometry;
- ``assign``: hand out the next version number for a WRITE, together with
  the precomputed border references that make metadata weaving a purely
  local computation for the writer (write/write concurrency, §IV.C);
- ``complete``: accept a writer's success report and **publish versions
  strictly in version order** — a snapshot becomes readable only once all
  earlier snapshots are complete, which is what gives every reader the
  same total order of writes (global serializability, §II);
- ``get_latest`` / ``stat``: serve readers the latest published version
  (the only reader interaction with any centralized entity, §IV.A).

The manager is deliberately a small, fast state machine: the paper's whole
point is that this is the *only* serialization in the system, so everything
here is O(patch metadata) per write and O(1) per read.

Extension beyond the paper (documented in DESIGN.md): ``abandon`` lets the
most recent writer back out (e.g. client crash before publishing) by
rolling the assignment back, preserving liveness for later writers. The
general failed-writer recovery problem is future work in the paper as well.

Durability (PR 6): construct with a :class:`~repro.core.journal.Journal`
and every mutation follows the WAL discipline — validate, **append the
record, then apply it** — so the reply a client sees is always backed by
the log. Recovery replays the log into ``_BlobState`` and then *resolves*
the interrupted tail: every version newer than ``latest_published``
(in-flight or completed-but-unpublished) is rolled back top-down, so the
publish order stays total and the next writer starts from a clean chain.
Rollback needs the patch undo, which is why ``complete`` only forgets an
undo as its version actually *publishes*.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BlobNotFound, StaleWrite, VersionNotPublished
from repro.metadata.tree import TreeGeometry
from repro.util.intervals import Interval
from repro.version.history import PatchHistory

logger = logging.getLogger("repro.vm")

#: Sentinel clients pass to READ for "the latest published version".
LATEST = -1


@dataclass(frozen=True, slots=True)
class WriteTicket:
    """Everything a writer needs to weave its subtree in isolation."""

    blob_id: str
    version: int
    #: ((offset, size), version) for every border child interval
    border_refs: tuple[tuple[tuple[int, int], int], ...]

    def refs_as_dict(self) -> dict[Interval, int]:
        return {Interval(o, s): v for (o, s), v in self.border_refs}


@dataclass
class _BlobState:
    blob_id: str
    geom: TreeGeometry
    history: PatchHistory
    next_version: int = 1
    latest_published: int = 0
    in_flight: dict[int, Interval] = field(default_factory=dict)
    completed: set[int] = field(default_factory=set)
    #: completions-counter reading at assign time, per unpublished version
    #: (the clock for the ``stuck_writes`` age column)
    assigned_at: dict[int, int] = field(default_factory=dict)


class VersionManager:
    """Centralized version authority (one per deployment)."""

    def __init__(self, journal=None) -> None:
        self._blobs: dict[str, _BlobState] = {}
        self._alloc_counter = 0
        self.assigns = 0
        self.completions = 0
        self.journal = journal
        self.replayed_records = 0
        self.rolled_back = 0
        if journal is not None:
            self._recover()

    # -- durability ---------------------------------------------------------

    def _snapshot_state(self) -> dict[str, Any]:
        return {
            "blobs": self._blobs,
            "alloc_counter": self._alloc_counter,
            "assigns": self.assigns,
            "completions": self.completions,
        }

    def _restore(self, state: dict[str, Any]) -> None:
        self._blobs = state["blobs"]
        self._alloc_counter = state["alloc_counter"]
        self.assigns = state["assigns"]
        self.completions = state["completions"]

    def _recover(self) -> None:
        """Replay snapshot + log, then roll back the unpublished tail."""
        state, records = self.journal.open()
        if state is not None:
            self._restore(state)
        for record in records:
            self._apply(record)
        self.replayed_records = len(records)
        self.rolled_back = self._apply(("resolve",))
        logger.info(
            "vm recovery: %d blob(s), %d log record(s) replayed, "
            "%d unpublished assignment(s) rolled back",
            len(self._blobs), len(records), self.rolled_back,
        )
        # Start the new incarnation from a clean snapshot: makes the
        # resolve above durable and drops the replayed log.
        self.journal.compact(self._snapshot_state())

    def _log_and_apply(self, record: tuple) -> Any:
        """WAL discipline: append first, apply second, reply third."""
        if self.journal is not None:
            self.journal.append(record)
        result = self._apply(record)
        if self.journal is not None and self.journal.should_compact():
            self.journal.compact(self._snapshot_state())
        return result

    def _apply(self, record: tuple) -> Any:
        op = record[0]
        if op == "alloc":
            return self._apply_alloc(*record[1:])
        if op == "assign":
            return self._apply_assign(*record[1:])
        if op == "complete":
            return self._apply_complete(*record[1:])
        if op == "abandon":
            return self._apply_abandon(*record[1:])
        if op == "resolve":
            return self._apply_resolve()
        raise ValueError(f"version manager: unknown journal record {op!r}")

    def close(self) -> None:
        """Clean shutdown: compact so the next incarnation replays nothing."""
        if self.journal is not None:
            from repro.core.journal import JournalError

            try:
                self.journal.compact(self._snapshot_state())
            except JournalError:
                pass  # a crashed (fault-injected) journal stays as-is
            self.journal.close()

    # -- blob lifecycle -----------------------------------------------------

    def alloc(self, total_size: int, pagesize: int) -> str:
        """Create a blob; returns its globally unique id (paper's ALLOC)."""
        TreeGeometry(total_size, pagesize)  # validates geometry before logging
        return self._log_and_apply(("alloc", total_size, pagesize))

    def _apply_alloc(self, total_size: int, pagesize: int) -> str:
        geom = TreeGeometry(total_size, pagesize)
        self._alloc_counter += 1
        blob_id = f"blob-{self._alloc_counter:06d}"
        self._blobs[blob_id] = _BlobState(
            blob_id=blob_id, geom=geom, history=PatchHistory(geom)
        )
        return blob_id

    def stat(self, blob_id: str) -> tuple[int, int, int]:
        """``(total_size, pagesize, latest_published)`` for a blob."""
        st = self._state(blob_id)
        return (st.geom.total_size, st.geom.pagesize, st.latest_published)

    def blob_ids(self) -> list[str]:
        return sorted(self._blobs)

    # -- write path ------------------------------------------------------------

    def assign(self, blob_id: str, offset: int, size: int) -> WriteTicket:
        """Serialize this WRITE: next version number + border references."""
        st = self._state(blob_id)
        st.geom.check_aligned(offset, size)  # validate before logging
        return self._log_and_apply(("assign", blob_id, offset, size))

    def _apply_assign(self, blob_id: str, offset: int, size: int) -> WriteTicket:
        st = self._state(blob_id)
        patch = st.geom.check_aligned(offset, size)
        refs = st.history.border_refs(patch)
        version = st.next_version
        st.next_version += 1
        st.history.record(version, patch)
        st.in_flight[version] = patch
        st.assigned_at[version] = self.completions
        self.assigns += 1
        return WriteTicket(
            blob_id=blob_id,
            version=version,
            border_refs=tuple(
                sorted(((iv.offset, iv.size), v) for iv, v in refs.items())
            ),
        )

    def complete(self, blob_id: str, version: int) -> int:
        """Report success; publish in-order; return latest published."""
        st = self._state(blob_id)
        if version not in st.in_flight:
            raise StaleWrite(
                f"blob {blob_id}: completion for unknown version {version}"
            )
        return self._log_and_apply(("complete", blob_id, version))

    def _apply_complete(self, blob_id: str, version: int) -> int:
        st = self._state(blob_id)
        del st.in_flight[version]
        st.completed.add(version)
        # Publish every consecutive completed version (liveness: a write
        # publishes as soon as all of its predecessors have completed).
        # The undo survives until the version *publishes* — recovery rolls
        # back completed-but-unpublished versions too.
        while (st.latest_published + 1) in st.completed:
            st.latest_published += 1
            st.completed.discard(st.latest_published)
            st.history.forget_undo(st.latest_published)
            st.assigned_at.pop(st.latest_published, None)
        self.completions += 1
        return st.latest_published

    def abandon(self, blob_id: str, version: int) -> int:
        """Back out the *most recent* assignment (extension, see module doc)."""
        st = self._state(blob_id)
        if version not in st.in_flight:
            raise StaleWrite(
                f"blob {blob_id}: abandon for unknown version {version}"
            )
        if version != st.next_version - 1:
            raise StaleWrite(
                f"blob {blob_id}: only the most recently assigned version "
                f"({st.next_version - 1}) can be abandoned, not {version}"
            )
        return self._log_and_apply(("abandon", blob_id, version))

    def _apply_abandon(self, blob_id: str, version: int) -> int:
        st = self._state(blob_id)
        st.history.rollback_last(version)
        del st.in_flight[version]
        st.assigned_at.pop(version, None)
        st.next_version -= 1
        return st.next_version

    def rollback_unpublished(self) -> int:
        """Roll back every unpublished assignment, across all blobs.

        This is the recovery resolution step, also callable live (it is
        journaled): after it, ``next_version == latest_published + 1``
        for every blob and no write is in flight. Returns the number of
        assignments rolled back.
        """
        return self._log_and_apply(("resolve",))

    def _apply_resolve(self) -> int:
        rolled = 0
        for st in self._blobs.values():
            # Top-down: rollback_last only accepts the newest recorded
            # version, so unwind from the tail toward latest_published.
            for version in range(st.next_version - 1, st.latest_published, -1):
                st.history.rollback_last(version)
                st.in_flight.pop(version, None)
                st.completed.discard(version)
                st.assigned_at.pop(version, None)
                rolled += 1
            st.next_version = st.latest_published + 1
        return rolled

    # -- read path ----------------------------------------------------------

    def get_latest(self, blob_id: str) -> int:
        return self._state(blob_id).latest_published

    def resolve_read(self, blob_id: str, version: int) -> tuple[int, int]:
        """Validate a READ's version; returns ``(effective, latest)``.

        Implements the paper's contract: reading an unpublished version
        fails; ``LATEST`` resolves to the newest published snapshot.
        """
        st = self._state(blob_id)
        latest = st.latest_published
        effective = latest if version == LATEST else version
        if effective < 0 or effective > latest:
            raise VersionNotPublished(blob_id, version, latest)
        return effective, latest

    # -- introspection ---------------------------------------------------------

    def in_flight_versions(self, blob_id: str) -> list[int]:
        return sorted(self._state(blob_id).in_flight)

    def stuck_writes(self, blob_id: str) -> list[tuple[int, int, int, int]]:
        """In-flight assignments with their age: ``(version, offset, size,
        age)`` where *age* counts completions (anywhere) since the version
        was assigned — a write that stays in flight while the completion
        clock advances is blocking the publish chain (see OPERATIONS.md).
        """
        st = self._state(blob_id)
        return [
            (
                version,
                patch.offset,
                patch.size,
                self.completions - st.assigned_at.get(version, self.completions),
            )
            for version, patch in sorted(st.in_flight.items())
        ]

    def patches(self, blob_id: str) -> list[tuple[int, int, int]]:
        """Recorded patch catalog: ``(version, offset, size)`` per write
        (published and in-flight), in version order. Tooling surface."""
        st = self._state(blob_id)
        return [(v, p.offset, p.size) for v, p in st.history.patches]

    def patch_of(self, blob_id: str, version: int) -> Interval:
        st = self._state(blob_id)
        for v, patch in st.history.patches:
            if v == version:
                return patch
        raise StaleWrite(f"blob {blob_id}: no recorded patch for version {version}")

    def _state(self, blob_id: str) -> _BlobState:
        try:
            return self._blobs[blob_id]
        except KeyError:
            raise BlobNotFound(f"unknown blob id {blob_id!r}") from None

    # -- RPC dispatch ----------------------------------------------------------

    def handle(self, method: str, args: tuple) -> Any:
        if method == "vm.get_latest":
            return self.get_latest(*args)
        if method == "vm.resolve_read":
            return self.resolve_read(*args)
        if method == "vm.assign":
            return self.assign(*args)
        if method == "vm.complete":
            return self.complete(*args)
        if method == "vm.alloc":
            return self.alloc(*args)
        if method == "vm.stat":
            return self.stat(*args)
        if method == "vm.abandon":
            return self.abandon(*args)
        if method == "vm.in_flight":
            return self.in_flight_versions(*args)
        if method == "vm.stuck_writes":
            return self.stuck_writes(*args)
        if method == "vm.patches":
            return self.patches(*args)
        raise ValueError(f"version manager: unknown method {method!r}")
