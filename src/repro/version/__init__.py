"""Versioning: patch history and the version manager.

The version manager is "the key actor of the system" (paper §III.A): it
assigns version numbers (the only serialization in the whole data path),
publishes snapshots strictly in version order, and precomputes the border
references that let concurrent writers weave their metadata subtrees in
complete isolation (paper §IV.C).
"""

from repro.version.history import PatchHistory
from repro.version.manager import VersionManager, WriteTicket

__all__ = ["PatchHistory", "VersionManager", "WriteTicket"]
